type t = {
  jobs : int;
  mutex : Mutex.t;  (* guards [queue] and [closed] *)
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

(* One batch per [map] call: tasks decrement [remaining] once their result
   (or exception) is stored; the submitter sleeps on [finished] only when
   the shared queue is empty, i.e. every leftover task is already running
   on some worker. *)
type batch = { bm : Mutex.t; finished : Condition.t; mutable remaining : int }

(* Which execution slot the current domain occupies: 0 for the submitter
   (and any domain that never joined a pool), [1 .. jobs-1] for spawned
   workers.  Sharded observability state (Recflow_obs_core.Collect) uses
   this as a write index so the per-event path needs no lock: a slot is
   only ever written by the one domain that owns it. *)
let slot_key = Domain.DLS.new_key (fun () -> 0)

let slot () = Domain.DLS.get slot_key

let worker t =
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.nonempty t.mutex
    done;
    if Queue.is_empty t.queue then begin
      (* closed and drained *)
      running := false;
      Mutex.unlock t.mutex
    end
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      task ()
    end
  done

let create ?jobs () =
  let jobs =
    match jobs with Some j -> j | None -> max 1 (Domain.recommended_domain_count ())
  in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () ->
            Domain.DLS.set slot_key (i + 1);
            worker t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let map (type b) t (f : _ -> b) xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let results : b option array = Array.make n None in
    let errors : (exn * Printexc.raw_backtrace) option array = Array.make n None in
    let batch = { bm = Mutex.create (); finished = Condition.create (); remaining = n } in
    let task i () =
      (match f arr.(i) with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
      Mutex.lock batch.bm;
      batch.remaining <- batch.remaining - 1;
      if batch.remaining = 0 then Condition.broadcast batch.finished;
      Mutex.unlock batch.bm
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.push (task i) t.queue
    done;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    (* The submitter helps drain the queue (so [jobs = 1] is plain
       sequential execution in submission order and nested [map] calls
       cannot starve), then waits for any task still running elsewhere. *)
    let rec help () =
      Mutex.lock t.mutex;
      let job = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
      Mutex.unlock t.mutex;
      match job with
      | Some j ->
        j ();
        help ()
      | None ->
        Mutex.lock batch.bm;
        if batch.remaining > 0 then Condition.wait batch.finished batch.bm;
        let settled = batch.remaining = 0 in
        Mutex.unlock batch.bm;
        if not settled then help ()
    in
    help ();
    Array.iter
      (function Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
      errors;
    Array.to_list (Array.map Option.get results)

let run t thunks = map t (fun f -> f ()) thunks

(* ------------------------------------------------------------------ *)
(* Shared default pool                                                 *)
(* ------------------------------------------------------------------ *)

let default_state : (int option * t option) ref = ref (None, None)

let default_mutex = Mutex.create ()

let () = at_exit (fun () -> match !default_state with _, Some p -> shutdown p | _ -> ())

let set_default_jobs j =
  if j < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  Mutex.lock default_mutex;
  (match !default_state with _, Some p -> shutdown p | _ -> ());
  default_state := (Some j, None);
  Mutex.unlock default_mutex

let default () =
  Mutex.lock default_mutex;
  let pool =
    match !default_state with
    | _, Some p -> p
    | width, None ->
      let p = create ?jobs:width () in
      default_state := (width, Some p);
      p
  in
  Mutex.unlock default_mutex;
  pool

let default_jobs () =
  Mutex.lock default_mutex;
  let j =
    match !default_state with
    | _, Some p -> p.jobs
    | Some w, None -> w
    | None, None -> max 1 (Domain.recommended_domain_count ())
  in
  Mutex.unlock default_mutex;
  j
