(* Work-stealing domain pool.

   The PR 2 pool was a single [Queue.t] behind one mutex: every push and
   every pop of every task took the global pool lock, and BENCH_5/6 showed
   the result — negative scaling on sub-millisecond simulation tasks, the
   whole sweep serialized on the lock.  The rewrite gives every execution
   slot its own Chase–Lev deque ({!Deque}): owners push/pop lock-free at
   the bottom, idle slots steal from the top, and a batch enters the pool
   as ONE range task that splits itself in half until ranges are below a
   chunk threshold — submission is O(n/chunk) lock-free pushes instead of
   n mutex acquisitions, and thieves pick up half the outstanding work per
   steal.

   Blocking is kept off the hot path: a worker that finds every deque
   empty parks on a condition variable, and wake-ups go through an atomic
   epoch counter — a push bumps the epoch and only touches the mutex when
   the sleeper count (also an atomic) is non-zero, so a busy pool never
   takes a lock at all. *)

type task = unit -> unit

type t = {
  jobs : int;
  deques : task Deque.t array;  (* length [jobs]; index 0 = primary submitter *)
  inject : task Queue.t;  (* overflow for deque-less (secondary) submitters *)
  inject_size : int Atomic.t;
  inject_mutex : Mutex.t;
  lock : Mutex.t;  (* guards [wake] waits only *)
  wake : Condition.t;
  epoch : int Atomic.t;  (* bumped on every push; parking rechecks it *)
  sleepers : int Atomic.t;
  closed : bool Atomic.t;
  in_flight : int Atomic.t;  (* [map] calls currently executing *)
  submitter_free : bool Atomic.t;  (* ownership token for deque 0 *)
  minor_heap_words : int;
  mutable workers : unit Domain.t list;
}

(* ------------------------------------------------------------------ *)
(* Slot identity                                                       *)
(* ------------------------------------------------------------------ *)

(* Process-wide slot allocator.  Worker domains take a contiguous range at
   pool creation; any other domain (submitters, raw [Domain.spawn]s) lazily
   allocates its own slot on first use.  Every slot therefore has exactly
   one writing domain for its whole lifetime — the invariant the sharded
   observability state (Recflow_obs_core.Collect) builds on.  The previous
   scheme numbered every pool's workers 1..jobs-1, so two coexisting pools
   handed the same slot to two domains and sharded counters lost updates. *)
let next_slot = Atomic.make 1

let slot_key = Domain.DLS.new_key (fun () -> Atomic.fetch_and_add next_slot 1)

let slot () = Domain.DLS.get slot_key

let slot_limit () = Atomic.get next_slot

(* Which pool the current domain belongs to (and its deque index there):
   [Some (pool, i)] inside a worker or a token-holding submitter.  Nested
   submissions reuse the slot; foreign-pool submissions fall back to the
   injection queue. *)
let ctx_key : (t * int) option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let my_index t =
  match Domain.DLS.get ctx_key with Some (p, i) when p == t -> i | _ -> -1

(* ------------------------------------------------------------------ *)
(* Task discovery                                                      *)
(* ------------------------------------------------------------------ *)

let take_inject t =
  if Atomic.get t.inject_size = 0 then None
  else begin
    Mutex.lock t.inject_mutex;
    let r = Queue.take_opt t.inject in
    if r <> None then Atomic.decr t.inject_size;
    Mutex.unlock t.inject_mutex;
    r
  end

(* Own deque first (LIFO: freshest split, best locality), then the
   injection queue, then a stealing sweep over the other deques. *)
let find_task t my =
  let own = if my >= 0 then Deque.pop t.deques.(my) else None in
  match own with
  | Some _ -> own
  | None -> (
    match take_inject t with
    | Some _ as s -> s
    | None ->
      let j = t.jobs in
      let start = if my >= 0 then my + 1 else 0 in
      let rec scan k =
        if k = j then None
        else
          let v = (start + k) mod j in
          if v = my then scan (k + 1)
          else
            match Deque.steal t.deques.(v) with Some _ as s -> s | None -> scan (k + 1)
      in
      scan 0)

(* Push from whatever execution context is running: a worker (or the
   token-holding submitter) uses its own deque, anyone else the injection
   queue.  Parked workers are woken through the epoch/sleeper protocol;
   the mutex is only touched when somebody is actually asleep. *)
let push_current t task =
  (match my_index t with
  | i when i >= 0 -> Deque.push t.deques.(i) task
  | _ ->
    Mutex.lock t.inject_mutex;
    Queue.push task t.inject;
    Atomic.incr t.inject_size;
    Mutex.unlock t.inject_mutex);
  Atomic.incr t.epoch;
  if Atomic.get t.sleepers > 0 then begin
    Mutex.lock t.lock;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock
  end

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

(* A worker may only exit once the pool is closed AND no [map] is in
   flight: exiting on [closed] alone would strand the splits of a batch
   that raced [shutdown] (its submitter, parked on the wake protocol,
   would then wait forever on work nobody runs).  [shutdown] sets [closed]
   first and then waits for [in_flight] to drain, so this condition is
   eventually stable. *)
let done_for_good t = Atomic.get t.closed && Atomic.get t.in_flight = 0

let worker t local =
  let rec loop () =
    (* Read the epoch before scanning: a push that lands mid-scan bumps
       it, and the recheck under the lock then skips the wait — the
       standard no-lost-wakeup dance without locking the push path. *)
    let e = Atomic.get t.epoch in
    match find_task t local with
    | Some task ->
      task ();
      loop ()
    | None ->
      if not (done_for_good t) then begin
        Mutex.lock t.lock;
        Atomic.incr t.sleepers;
        if Atomic.get t.epoch = e && not (done_for_good t) then Condition.wait t.wake t.lock;
        Atomic.decr t.sleepers;
        Mutex.unlock t.lock;
        loop ()
      end
  in
  loop ()

let create ?jobs ?(minor_heap_words = 1 lsl 20) () =
  let jobs =
    match jobs with Some j -> j | None -> max 1 (Domain.recommended_domain_count ())
  in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  if minor_heap_words < 1 lsl 12 then
    invalid_arg "Pool.create: minor_heap_words unreasonably small";
  let t =
    {
      jobs;
      deques = Array.init jobs (fun _ -> Deque.create ());
      inject = Queue.create ();
      inject_size = Atomic.make 0;
      inject_mutex = Mutex.create ();
      lock = Mutex.create ();
      wake = Condition.create ();
      epoch = Atomic.make 0;
      sleepers = Atomic.make 0;
      closed = Atomic.make false;
      in_flight = Atomic.make 0;
      submitter_free = Atomic.make true;
      minor_heap_words;
      workers = [];
    }
  in
  let worker_base = if jobs > 1 then Atomic.fetch_and_add next_slot (jobs - 1) else 0 in
  t.workers <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () ->
            Domain.DLS.set slot_key (worker_base + i);
            Domain.DLS.set ctx_key (Some (t, i + 1));
            (* Allocation-heavy sub-millisecond tasks hit the stock 256k-word
               minor heap every few hundred microseconds, and each minor
               collection synchronizes every domain; a bigger nursery per
               worker trades memory for an order of magnitude fewer
               stop-the-world points.  Scoped to spawned workers so jobs=1
               runs are untouched. *)
            (try Gc.set { (Gc.get ()) with Gc.minor_heap_size = t.minor_heap_words }
             with _ -> ());
            worker t (i + 1)));
  t

let jobs t = t.jobs

let shutdown t =
  if not (Atomic.exchange t.closed true) then begin
    (* Drain before tearing down: a [map] that was admitted before the
       [closed] flip (its [in_flight] increment and close-check are one
       atomic protocol, see [enter]) must run to completion with the
       workers still alive — the batch's final [leave] broadcasts [wake]
       under the same lock, so the wait below cannot miss it. *)
    Mutex.lock t.lock;
    while Atomic.get t.in_flight > 0 do
      Condition.wait t.wake t.lock
    done;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

(* ------------------------------------------------------------------ *)
(* Batch submission                                                    *)
(* ------------------------------------------------------------------ *)

(* Admission, paired with [shutdown]'s drain.  The increment goes first
   and the close-check second (the mirror image of shutdown's close-flip
   then in-flight-read, both seq_cst), so the two can never miss each
   other: either this map observes [closed] and backs out, or shutdown
   observes [in_flight > 0] and waits for [leave].  A plain
   check-then-increment was a TOCTOU hole — a map could slip in between
   shutdown's (or [set_default_jobs]'s) check and the teardown. *)
let leave t =
  if Atomic.fetch_and_add t.in_flight (-1) = 1 && Atomic.get t.closed then begin
    (* last in-flight map on a closing pool: wake shutdown's drain loop
       (and any worker parked waiting for permission to exit) *)
    Mutex.lock t.lock;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock
  end

let enter t =
  Atomic.incr t.in_flight;
  if Atomic.get t.closed && my_index t < 0 then begin
    (* Refuse new top-level work on a closed pool — but a NESTED map
       (issued from inside an already-admitted batch, so the calling
       domain carries this pool's context) is still serviceable during
       the shutdown drain: the workers stay alive while [in_flight > 0],
       and the outer batch cannot settle until the nested one does, so
       admitting it cannot outlive the drain.  Refusing it would turn the
       outer batch's promised full result into an error. *)
    leave t;
    invalid_arg "Pool.map: pool has been shut down (use-after-shutdown)"
  end

let map (type b) t (f : _ -> b) xs =
  enter t;
  Fun.protect ~finally:(fun () -> leave t) @@ fun () ->
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when t.jobs = 1 ->
    (* Strictly sequential in submission order on the caller — the --jobs 1
       determinism oracle. *)
    List.map f xs
  | xs ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let results : b option array = Array.make n None in
    let errors : (exn * Printexc.raw_backtrace) option array = Array.make n None in
    let remaining = Atomic.make n in
    (* Batches of long simulation tasks want chunk = 1 (perfect balance);
       huge micro-task batches want larger leaves so the per-range
       bookkeeping amortizes. *)
    let chunk = max 1 (n / (t.jobs * 16)) in
    let exec i =
      match f arr.(i) with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
    in
    (* Execute [lo, hi): split off the upper half (stealable) while the
       range is above the chunk threshold, run the leaf inline, and retire
       the leaf's element count from the batch in one atomic. *)
    let rec range lo hi () =
      if hi - lo > chunk then begin
        let mid = (lo + hi) / 2 in
        push_current t (range mid hi);
        range lo mid ()
      end
      else begin
        for i = lo to hi - 1 do
          exec i
        done;
        let len = hi - lo in
        if Atomic.fetch_and_add remaining (-len) = len then begin
          (* This leaf settled the batch: wake the (possibly parked)
             submitter through the same epoch/sleepers protocol pushes
             use — it parks on the pool-wide [wake], not a batch-local
             condvar, so this is the only signal it needs. *)
          Atomic.incr t.epoch;
          if Atomic.get t.sleepers > 0 then begin
            Mutex.lock t.lock;
            Condition.broadcast t.wake;
            Mutex.unlock t.lock
          end
        end
      end
    in
    (* Claim a deque for the duration when the calling domain has none:
       deque 0 belongs to at most one submitter at a time (owner operations
       are single-domain); a second concurrent submitter falls back to the
       injection queue. *)
    let my, release =
      match my_index t with
      | i when i >= 0 -> (i, fun () -> ())
      | _ ->
        if Atomic.compare_and_set t.submitter_free true false then begin
          (* Save and restore rather than erase: the caller may be a
             worker of ANOTHER pool submitting here, and clobbering its
             context would silently demote all its later pushes in its
             own pool to the mutexed injection queue. *)
          let saved = Domain.DLS.get ctx_key in
          Domain.DLS.set ctx_key (Some (t, 0));
          ( 0,
            fun () ->
              Domain.DLS.set ctx_key saved;
              Atomic.set t.submitter_free true )
        end
        else (-1, fun () -> ())
    in
    Fun.protect ~finally:release @@ fun () ->
    (* The submitter executes the root range itself; splits peel off to
       the deque as it descends, and workers steal them from the top. *)
    range 0 n ();
    let rec help () =
      if Atomic.get remaining > 0 then begin
        let e = Atomic.get t.epoch in
        match find_task t my with
        | Some task ->
          task ();
          help ()
        | None ->
          (* Nothing stealable *at this instant* — but a range task still
             running on a worker can push fresh splits at any moment, so
             "empty scan" is not "every leftover leaf is already running".
             Park on the pool-wide wake protocol (registered in
             [sleepers], epoch recheck under the lock): a new push or the
             settling leaf both bump the epoch and broadcast, so the
             submitter rejoins the moment stealable work (or the finish
             signal) appears instead of idling until settlement. *)
          Mutex.lock t.lock;
          Atomic.incr t.sleepers;
          if Atomic.get t.epoch = e && Atomic.get remaining > 0 then
            Condition.wait t.wake t.lock;
          Atomic.decr t.sleepers;
          Mutex.unlock t.lock;
          help ()
      end
    in
    help ();
    Array.iter
      (function Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
      errors;
    Array.to_list (Array.map Option.get results)

let run t thunks = map t (fun f -> f ()) thunks

(* ------------------------------------------------------------------ *)
(* Shared default pool                                                 *)
(* ------------------------------------------------------------------ *)

let default_state : (int option * t option) ref = ref (None, None)

let default_mutex = Mutex.create ()

let () = at_exit (fun () -> match !default_state with _, Some p -> shutdown p | _ -> ())

let set_default_jobs j =
  if j < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  Mutex.lock default_mutex;
  let retired =
    match !default_state with
    | _, Some p ->
      (* Best-effort misuse detection: a map that enters concurrently with
         this check can still slip past it (the check and map's admission
         are not one atomic step).  That race is SAFE, not just unlikely —
         [shutdown] below drains every admitted map before joining the
         workers, and any map that loses the admission race against the
         close flip raises in [enter].  The refusal here exists to turn
         the blatant case (caller visibly mid-sweep) into an error instead
         of a silent blocking drain. *)
      if Atomic.get p.in_flight > 0 then begin
        Mutex.unlock default_mutex;
        invalid_arg
          "Pool.set_default_jobs: a map on the default pool is still in flight \
           (swapping now would tear the pool out from under its submitter)"
      end;
      Some p
    | _ -> None
  in
  default_state := (Some j, None);
  Mutex.unlock default_mutex;
  (* join outside the registry lock: a long drain must not block [default] *)
  Option.iter shutdown retired

let default () =
  Mutex.lock default_mutex;
  let pool =
    match !default_state with
    | _, Some p -> p
    | width, None ->
      let p = create ?jobs:width () in
      default_state := (width, Some p);
      p
  in
  Mutex.unlock default_mutex;
  pool

let default_jobs () =
  Mutex.lock default_mutex;
  let j =
    match !default_state with
    | _, Some p -> p.jobs
    | Some w, None -> w
    | None, None -> max 1 (Domain.recommended_domain_count ())
  in
  Mutex.unlock default_mutex;
  j
