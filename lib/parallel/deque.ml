(* Chase–Lev deque over a growable ring buffer.

   Indices [top] and [bottom] increase monotonically; live elements occupy
   [top, bottom).  Both are seq_cst atomics: the owner's pop publishes its
   claim on [bottom] before reading [top] (the fence that makes the
   last-element race safe), and a thief's acquire of [bottom] makes the
   owner's preceding buffer write visible.

   The buffer itself is a plain [Obj.t array] read racily by thieves.
   That is safe in the OCaml 5 memory model (loads never tear and always
   yield *some* value previously stored), and the algorithm never *uses* a
   racy read: a thief's element read only escapes after its CAS on [top]
   succeeds, which proves the slot was not recycled — the owner reuses a
   slot only once [bottom - top] wraps the capacity, and [grow] runs
   before that.  A stale value read under a lost race is discarded.

   [grow] swaps the [buf] reference itself, so a thief must read [q.buf]
   EXACTLY ONCE per attempt and derive both the mask and the element from
   that one snapshot: reading the length from one array and the slot from
   another would index the wrong slot (or out of bounds) with no CAS to
   catch it.  Either snapshot is fine — the old array keeps valid values
   for every index in [top, bottom) because [grow] copies that range and
   the owner only ever writes the new array afterwards; if [top] has moved
   past the snapshot index meanwhile, the CAS fails and the read is
   discarded as usual.

   Vacated slots are overwritten with an immediate on the owner-exclusive
   pop path so the deque does not retain popped closures; stolen slots are
   cleared lazily on wrap (a thief may still be reading them). *)

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  mutable buf : Obj.t array;  (* capacity always a power of two *)
}

let dummy = Obj.repr 0

let initial_capacity = 64

let create () =
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = Array.make initial_capacity dummy }

let size q = max 0 (Atomic.get q.bottom - Atomic.get q.top)

(* Owner only; [t] is a lower bound for the live region's start, so copying
   from [t] is enough even if thieves advance top concurrently (they only
   shrink the region we must preserve). *)
let grow q ~t ~b =
  let cap = Array.length q.buf in
  let nbuf = Array.make (cap * 2) dummy in
  for i = t to b - 1 do
    nbuf.(i land ((cap * 2) - 1)) <- q.buf.(i land (cap - 1))
  done;
  q.buf <- nbuf

let push q v =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  let cap = Array.length q.buf in
  if b - t >= cap then grow q ~t ~b;
  q.buf.(b land (Array.length q.buf - 1)) <- Obj.repr v;
  Atomic.set q.bottom (b + 1)

let pop (type a) (q : a t) : a option =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* empty: undo the claim *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let mask = Array.length q.buf - 1 in
    let v : a = Obj.obj q.buf.(b land mask) in
    if b > t then begin
      (* more than one element: no thief can reach index [b] *)
      q.buf.(b land mask) <- dummy;
      Some v
    end
    else if
      (* last element: race the thieves for it *)
      Atomic.compare_and_set q.top t (t + 1)
    then begin
      Atomic.set q.bottom (t + 1);
      Some v
    end
    else begin
      (* a thief won the element *)
      Atomic.set q.bottom (t + 1);
      None
    end
  end

let steal (type a) (q : a t) : a option =
  let rec go () =
    let t = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    if b <= t then None
    else begin
      (* single snapshot of the buffer reference: mask and element must
         come from the same array, or a racing [grow] pairs a new array
         with a stale mask (wrong slot — possibly a reclaimed immediate
         Obj.obj'd to a closure) or a stale array with a new mask (out of
         bounds).  See the header comment. *)
      let a = q.buf in
      let v : a = Obj.obj a.(t land (Array.length a - 1)) in
      if Atomic.compare_and_set q.top t (t + 1) then Some v
      else begin
        (* another thief (or the owner's last-element pop) advanced [top];
           the value read is stale and must not be used *)
        Domain.cpu_relax ();
        go ()
      end
    end
  in
  go ()
