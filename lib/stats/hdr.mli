(** Log-bucketed (HDR-style) histogram over non-negative integer durations.

    Small values (below [2^precision]) are counted exactly; above that each
    power-of-two octave is split into [2^precision] linear sub-buckets, so
    the relative quantization error is bounded by [2^-precision]
    everywhere.  Recording is allocation-free and lock-free, which makes
    these safe on the simulator's per-event hot path; the machine layer
    keeps one per latency family (RTT, retransmit delay, detection latency,
    episode duration, task sojourn) and the metrics document extracts
    p50/p90/p99/p999 from them. *)

type t

val create : ?precision:int -> unit -> t
(** [precision] is the sub-bucket bit width (default 5, i.e. ~3% relative
    error).
    @raise Invalid_argument unless [1 <= precision <= 14]. *)

val precision : t -> int

val record : t -> int -> unit
(** Negative values are not durations: they land in the {!invalid} tally
    and do not perturb counts or quantiles. *)

val count : t -> int
(** Valid recorded values. *)

val invalid : t -> int
(** Rejected (negative) values. *)

val total : t -> int
(** Sum of valid recorded values. *)

val min_value : t -> int
(** Exact smallest recorded value. @raise Invalid_argument when empty. *)

val max_value : t -> int
(** Exact largest recorded value. @raise Invalid_argument when empty. *)

val mean : t -> float
(** 0.0 when empty. *)

val quantile : t -> float -> int
(** [quantile t q] for [q] in [[0, 100]]: nearest-rank quantile resolved to
    the upper edge of its bucket and clamped to the recorded min/max, so
    the result is within [2^-precision] relative error of the true order
    statistic (and exact at the extremes).
    @raise Invalid_argument when empty or [q] is out of range. *)

val merge : t -> t -> t
(** Pointwise sum; inputs unchanged.
    @raise Invalid_argument on precision mismatch. *)

val to_alist : t -> (int * int * int) list
(** Non-empty buckets as [(lo, hi, count)] triples, ascending; the value
    range of a bucket is the half-open interval [[lo, hi)]. *)

val pp : ?width:int -> Format.formatter -> t -> unit
(** ASCII bar chart of the non-empty buckets plus a one-line summary. *)
