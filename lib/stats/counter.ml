type set = (string, int ref) Hashtbl.t

let create_set () = Hashtbl.create 32

let cell set name =
  match Hashtbl.find_opt set name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add set name r;
    r

let incr set name = Stdlib.incr (cell set name)

let add set name n = cell set name := !(cell set name) + n

let get set name = match Hashtbl.find_opt set name with Some r -> !r | None -> 0

let names set =
  Hashtbl.fold (fun k _ acc -> k :: acc) set [] |> List.sort String.compare

let to_alist set = List.map (fun k -> (k, get set k)) (names set)

let merge a b =
  let out = create_set () in
  let blend set = Hashtbl.iter (fun k r -> add out k !r) set in
  blend a;
  blend b;
  out

let reset set = Hashtbl.iter (fun _ r -> r := 0) set

let pp ppf set =
  List.iter (fun (k, v) -> Format.fprintf ppf "%-32s %d@." k v) (to_alist set)
