(** Named integer counters.

    A [set] is a registry of counters keyed by name; the machine layer keeps
    one per processor plus one global set (messages sent, tasks spawned,
    checkpoints taken, results salvaged, ...).  Counters are created lazily
    on first use so call sites never need registration boilerplate. *)

type set

val create_set : unit -> set

val incr : set -> string -> unit

val add : set -> string -> int -> unit

val get : set -> string -> int
(** 0 for a counter that was never touched. *)

val names : set -> string list
(** Sorted list of counters that have been touched. *)

val to_alist : set -> (string * int) list
(** Sorted name/value pairs. *)

val merge : set -> set -> set
(** Pointwise sum; inputs are unchanged. *)

val reset : set -> unit

val pp : Format.formatter -> set -> unit
