type line = Row of string list | Separator

type t = { title : string; columns : string list; mutable lines : line list (* reversed *) }

let create ~title ~columns = { title; columns; lines = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row (%s): row has %d cells, header has %d" t.title
         (List.length row) (List.length t.columns));
  t.lines <- Row row :: t.lines

let add_separator t = t.lines <- Separator :: t.lines

let title t = t.title

let columns t = t.columns

let rows t =
  List.rev t.lines
  |> List.filter_map (function Row r -> Some r | Separator -> None)

let cell_int = string_of_int

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let widths t =
  let lines = List.rev t.lines in
  let init = List.map String.length t.columns in
  List.fold_left
    (fun acc line ->
      match line with
      | Separator -> acc
      | Row r -> List.map2 (fun w c -> max w (String.length c)) acc r)
    init lines

let pad width s = s ^ String.make (width - String.length s) ' '

let pp ppf t =
  let ws = widths t in
  let rule = String.concat "-+-" (List.map (fun w -> String.make w '-') ws) in
  Format.fprintf ppf "== %s ==@." t.title;
  Format.fprintf ppf "%s@." (String.concat " | " (List.map2 pad ws t.columns));
  Format.fprintf ppf "%s@." rule;
  List.iter
    (fun line ->
      match line with
      | Separator -> Format.fprintf ppf "%s@." rule
      | Row r -> Format.fprintf ppf "%s@." (String.concat " | " (List.map2 pad ws r)))
    (List.rev t.lines)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line cells = String.concat "," (List.map csv_escape cells) in
  String.concat "\n" (line t.columns :: List.map line (rows t)) ^ "\n"
