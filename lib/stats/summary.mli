(** Sample accumulator: running moments plus retained samples for quantiles.

    Small enough to keep one per metric per experiment run; quantiles are
    exact (samples are retained, sorted on demand and the sorted array is
    cached until the next observation).  Moments use Welford's online
    algorithm, so the standard deviation stays accurate even when samples
    sit on a large common offset. *)

type t

val create : unit -> t

val observe : t -> float -> unit

val observe_int : t -> int -> unit

val count : t -> int

val total : t -> float

val mean : t -> float
(** 0.0 when empty. *)

val stddev : t -> float
(** Population standard deviation (Welford); 0.0 when fewer than two
    samples. *)

val min_value : t -> float
(** @raise Invalid_argument when empty. *)

val max_value : t -> float
(** @raise Invalid_argument when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]], nearest-rank method.
    @raise Invalid_argument when empty or [p] out of range. *)

val median : t -> float

val to_list : t -> float list
(** Samples in observation order. *)

val pp : Format.formatter -> t -> unit
(** One-line "n / mean / sd / min / p50 / p95 / max" rendering. *)
