type t = {
  mutable samples : float list;  (* reverse observation order *)
  mutable n : int;
  mutable sum : float;
  mutable wmean : float;  (* Welford running mean *)
  mutable m2 : float;  (* Welford sum of squared deviations *)
  mutable lo : float;
  mutable hi : float;
  mutable sorted : float array option;  (* cache, invalidated by [observe] *)
}

let create () =
  {
    samples = [];
    n = 0;
    sum = 0.0;
    wmean = 0.0;
    m2 = 0.0;
    lo = infinity;
    hi = neg_infinity;
    sorted = None;
  }

let observe t x =
  t.samples <- x :: t.samples;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  (* Welford's update: numerically stable where the textbook
     sumsq/n - mean^2 cancels catastrophically for large offsets. *)
  let delta = x -. t.wmean in
  t.wmean <- t.wmean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.wmean));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x;
  t.sorted <- None

let observe_int t x = observe t (float_of_int x)

let count t = t.n

let total t = t.sum

let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let stddev t = if t.n < 2 then 0.0 else sqrt (Float.max (t.m2 /. float_of_int t.n) 0.0)

let require_nonempty t fn = if t.n = 0 then invalid_arg ("Summary." ^ fn ^ ": empty")

let min_value t =
  require_nonempty t "min_value";
  t.lo

let max_value t =
  require_nonempty t "max_value";
  t.hi

let sorted t =
  match t.sorted with
  | Some arr -> arr
  | None ->
    let arr = Array.of_list t.samples in
    Array.sort Float.compare arr;
    t.sorted <- Some arr;
    arr

let percentile t p =
  require_nonempty t "percentile";
  if p < 0.0 || p > 100.0 then invalid_arg "Summary.percentile: p out of range";
  let arr = sorted t in
  let n = Array.length arr in
  (* Nearest-rank: smallest index k with k/n >= p/100. *)
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let idx = if rank <= 0 then 0 else if rank > n then n - 1 else rank - 1 in
  arr.(idx)

let median t = percentile t 50.0

let to_list t = List.rev t.samples

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p95=%.2f max=%.2f" t.n (mean t)
      (stddev t) t.lo (median t) (percentile t 95.0) t.hi
