type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable under : int;
  mutable over : int;
  mutable n : int;
  mutable invalid : int;
}

let create ~lo ~hi ~buckets =
  if not (lo < hi) then invalid_arg "Histogram.create: need lo < hi";
  if buckets <= 0 then invalid_arg "Histogram.create: need buckets > 0";
  { lo; hi; counts = Array.make buckets 0; under = 0; over = 0; n = 0; invalid = 0 }

let observe t x =
  if not (Float.is_finite x) then
    (* NaN would otherwise fall through the comparisons below into bucket 0
       and infinities would masquerade as clamped extremes; neither is a
       measurement, so neither may perturb counts or bars. *)
    t.invalid <- t.invalid + 1
  else begin
    let buckets = Array.length t.counts in
    let idx =
    if x < t.lo then begin
      t.under <- t.under + 1;
      0
    end
    else if x >= t.hi then begin
      t.over <- t.over + 1;
      buckets - 1
    end
    else begin
      let frac = (x -. t.lo) /. (t.hi -. t.lo) in
      let i = int_of_float (frac *. float_of_int buckets) in
      if i >= buckets then buckets - 1 else i
    end
    in
    t.counts.(idx) <- t.counts.(idx) + 1;
    t.n <- t.n + 1
  end

let count t = t.n

let invalid t = t.invalid

let bucket_counts t = Array.copy t.counts

let underflow t = t.under

let overflow t = t.over

let bucket_bounds t i =
  let buckets = float_of_int (Array.length t.counts) in
  let step = (t.hi -. t.lo) /. buckets in
  (t.lo +. (float_of_int i *. step), t.lo +. (float_of_int (i + 1) *. step))

let pp ?(width = 40) ppf t =
  let peak = Array.fold_left max 1 t.counts in
  Array.iteri
    (fun i c ->
      let blo, bhi = bucket_bounds t i in
      let bar = String.make (c * width / peak) '#' in
      Format.fprintf ppf "[%10.2f, %10.2f) %6d %s@." blo bhi c bar)
    t.counts
