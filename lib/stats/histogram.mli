(** Fixed-bucket histogram over a float range, with ASCII bar rendering.

    Used by the experiment harness to show distributions (task sizes,
    recovery latencies) next to their summary statistics. *)

type t

val create : lo:float -> hi:float -> buckets:int -> t
(** @raise Invalid_argument unless [lo < hi] and [buckets > 0]. *)

val observe : t -> float -> unit
(** Finite values outside [\[lo, hi)] are clamped into the first/last
    bucket and counted in the under/overflow tallies.  NaN and infinite
    values are not measurements: they go to the {!invalid} tally and leave
    the buckets and {!count} untouched. *)

val count : t -> int
(** Finite observations only. *)

val invalid : t -> int
(** NaN / infinite observations rejected so far. *)

val bucket_counts : t -> int array

val underflow : t -> int

val overflow : t -> int

val bucket_bounds : t -> int -> float * float
(** [bucket_bounds t i] is the half-open value range of bucket [i]. *)

val pp : ?width:int -> Format.formatter -> t -> unit
(** Horizontal bar chart, one line per bucket; [width] is the bar width of
    the fullest bucket (default 40). *)
