(* Log-bucketed (HDR-style) histogram over non-negative integer durations.

   Layout: values below [base = 2^precision] land in their own exact slot;
   above that, each power-of-two octave is split into [base] linear
   sub-buckets, so relative error is bounded by 2^-precision everywhere.
   The index arithmetic is branch-light and allocation-free, which is what
   lets the machine layer record every RTT / sojourn / detection latency
   without showing up in profiles. *)

type t = {
  precision : int;  (* sub-bucket bits; relative error <= 2^-precision *)
  base : int;  (* 1 lsl precision *)
  counts : int array;
  mutable n : int;
  mutable sum : int;
  mutable minv : int;  (* max_int when empty *)
  mutable maxv : int;  (* -1 when empty *)
  mutable invalid : int;
}

let max_exponent = 62

let slots ~precision = (1 lsl precision) * (max_exponent + 2 - precision)

let create ?(precision = 5) () =
  if precision < 1 || precision > 14 then
    invalid_arg "Hdr.create: precision must be in [1, 14]";
  {
    precision;
    base = 1 lsl precision;
    counts = Array.make (slots ~precision) 0;
    n = 0;
    sum = 0;
    minv = max_int;
    maxv = -1;
    invalid = 0;
  }

let precision t = t.precision

(* Position of the highest set bit of [v > 0]. *)
let msb v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let index_of t v =
  if v < t.base then v
  else begin
    let e = msb v in
    let sub = (v lsr (e - t.precision)) - t.base in
    t.base + ((e - t.precision) * t.base) + sub
  end

(* Half-open value range [lo, hi) covered by slot [i]. *)
let bucket_bounds t i =
  if i < t.base then (i, i + 1)
  else begin
    let e = t.precision + ((i - t.base) / t.base) in
    let sub = (i - t.base) mod t.base in
    let lo = (t.base + sub) lsl (e - t.precision) in
    (lo, lo + (1 lsl (e - t.precision)))
  end

let record t v =
  if v < 0 then t.invalid <- t.invalid + 1
  else begin
    let i = index_of t v in
    t.counts.(i) <- t.counts.(i) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum + v;
    if v < t.minv then t.minv <- v;
    if v > t.maxv then t.maxv <- v
  end

let count t = t.n

let invalid t = t.invalid

let total t = t.sum

let min_value t = if t.n = 0 then invalid_arg "Hdr.min_value: empty" else t.minv

let max_value t = if t.n = 0 then invalid_arg "Hdr.max_value: empty" else t.maxv

let mean t = if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n

(* Nearest-rank quantile: the value [hi - 1] of the bucket holding the
   ceil(q/100 * n)-th sample, clamped to the recorded min/max so exact
   extremes come back exact. *)
let quantile t q =
  if t.n = 0 then invalid_arg "Hdr.quantile: empty";
  if q < 0.0 || q > 100.0 then invalid_arg "Hdr.quantile: q outside [0, 100]";
  let rank = int_of_float (ceil (q /. 100.0 *. float_of_int t.n)) in
  let rank = if rank < 1 then 1 else rank in
  let acc = ref 0 and found = ref (-1) and i = ref 0 in
  let slots = Array.length t.counts in
  while !found < 0 && !i < slots do
    acc := !acc + t.counts.(!i);
    if !acc >= rank then found := !i;
    incr i
  done;
  let _, hi = bucket_bounds t !found in
  let v = hi - 1 in
  if v < t.minv then t.minv else if v > t.maxv then t.maxv else v

let merge a b =
  if a.precision <> b.precision then invalid_arg "Hdr.merge: precision mismatch";
  let out = create ~precision:a.precision () in
  let blend s =
    Array.iteri (fun i c -> out.counts.(i) <- out.counts.(i) + c) s.counts;
    out.n <- out.n + s.n;
    out.sum <- out.sum + s.sum;
    if s.minv < out.minv then out.minv <- s.minv;
    if s.maxv > out.maxv then out.maxv <- s.maxv;
    out.invalid <- out.invalid + s.invalid
  in
  blend a;
  blend b;
  out

let to_alist t =
  let acc = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bucket_bounds t i in
      acc := (lo, hi, t.counts.(i)) :: !acc
    end
  done;
  !acc

let pp ?(width = 40) ppf t =
  if t.n = 0 then Format.fprintf ppf "(empty)@."
  else begin
    let rows = to_alist t in
    let peak = List.fold_left (fun m (_, _, c) -> max m c) 1 rows in
    List.iter
      (fun (lo, hi, c) ->
        Format.fprintf ppf "[%10d, %10d) %8d %s@." lo hi c (String.make (c * width / peak) '#'))
      rows;
    Format.fprintf ppf "n=%d mean=%.1f p50=%d p99=%d max=%d@." t.n (mean t) (quantile t 50.0)
      (quantile t 99.0) t.maxv
  end
