(** ASCII table rendering for experiment reports.

    Every experiment produces one or more [Table.t]; the harness prints them
    and EXPERIMENTS.md quotes them.  Cells are strings; helpers format ints
    and floats consistently so tables across experiments line up. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_separator : t -> unit
(** Horizontal rule between row groups. *)

val title : t -> string

val columns : t -> string list

val rows : t -> string list list
(** Data rows only (separators omitted), in insertion order. *)

val cell_int : int -> string

val cell_float : ?decimals:int -> float -> string

val cell_pct : float -> string
(** Render a ratio in [0,1] as a percentage with one decimal. *)

val pp : Format.formatter -> t -> unit

val to_csv : t -> string
(** Header line plus data rows, comma-separated with minimal quoting. *)
