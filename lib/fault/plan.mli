(** Fault plans: which processors fail, and when.

    A plan is relative to a *probe run* of the same configuration without
    faults: experiments first run fault-free to learn the makespan and the
    task→processor mapping, then build a plan ("kill the busiest processor
    at 40% of the run", "kill the processors hosting a parent and its
    grandparent") and re-run with it injected.  Determinism makes the probe
    an exact oracle for the faulty run up to the first failure. *)

module Ids = Recflow_recovery.Ids

type t = (int * Ids.proc_id) list
(** (time, victim) pairs, not necessarily sorted. *)

val apply : Recflow_machine.Cluster.t -> t -> unit
(** Schedule every failure on the cluster (before [run]). *)

val single : time:int -> Ids.proc_id -> t

val at_fractions : makespan:int -> (float * Ids.proc_id) list -> t
(** Convert run-fraction specs to absolute times (fractions clamped to
    [\[0.01, 0.99\]]). *)

val random_burst :
  rng:Recflow_sim.Rng.t -> procs:int -> count:int -> lo:int -> hi:int -> t
(** [count] failures at uniformly random times in [\[lo, hi\]], striking
    distinct uniformly random victims (fewer if [count > procs]).
    @raise Invalid_argument if [procs <= 0], [count < 0] or [hi < lo]. *)

val poisson :
  rng:Recflow_sim.Rng.t -> procs:int -> mean_interval:float -> until:int -> t
(** Failures arriving as a Poisson process with the given mean
    inter-arrival time, each striking a fresh victim, until [until] is
    passed or every processor has failed.
    @raise Invalid_argument if [procs <= 0], [mean_interval <= 0.] or
    [until < 0]. *)

(** {2 Network fault plans}

    Combinators building a {!Recflow_net.Chaos.spec} for [Config.chaos]:
    {[
      let chaos =
        Chaos.none
        |> Plan.drop_rate 0.2
        |> Plan.duplicate_rate 0.1
        |> Plan.partition ~from:800 ~until:1600 ~groups:[ [ 1; 2 ] ]
    ]} *)

val drop_rate : float -> Recflow_net.Chaos.spec -> Recflow_net.Chaos.spec

val duplicate_rate : float -> Recflow_net.Chaos.spec -> Recflow_net.Chaos.spec

val reorder : rate:float -> spread:int -> Recflow_net.Chaos.spec -> Recflow_net.Chaos.spec

val delay_spikes :
  rate:float -> max_delay:int -> Recflow_net.Chaos.spec -> Recflow_net.Chaos.spec

val partition :
  from:int -> until:int -> groups:int list list -> Recflow_net.Chaos.spec -> Recflow_net.Chaos.spec
(** Append a partition window; see {!Recflow_net.Chaos.partition} for the
    island semantics. *)

(** Victim selection from a probe run's journal. *)
module Pick : sig
  val busiest_at :
    Recflow_machine.Journal.t -> time:int -> exclude:Ids.proc_id list -> Ids.proc_id option
  (** Processor with most task activations that are not yet completed at
      [time] (excluding [exclude] and the super-root). *)

  val host_of :
    Recflow_machine.Journal.t -> stamp:Recflow_recovery.Stamp.t -> time:int -> Ids.proc_id option
  (** Processor hosting the most recent activation of [stamp] at [time]. *)

  val parent_grandparent_pair :
    Recflow_machine.Journal.t -> time:int -> (Ids.proc_id * Ids.proc_id) option
  (** A pair (parent_host, grandparent_host) of distinct processors such
      that some task alive at [time] has its parent on the first and its
      grandparent on the second — the §5.2 stranded-orphan scenario. *)

  val disjoint_pair :
    Recflow_machine.Journal.t -> time:int -> (Ids.proc_id * Ids.proc_id) option
  (** Two distinct processors hosting tasks from disjoint branches (no
      ancestor relation between any pair of their live stamps would be
      ideal; we settle for hosting sibling subtrees of the root). *)
end
