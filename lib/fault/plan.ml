module Ids = Recflow_recovery.Ids
module Stamp = Recflow_recovery.Stamp
module Journal = Recflow_machine.Journal
module Chaos = Recflow_net.Chaos

type t = (int * Ids.proc_id) list

let apply cluster plan =
  List.iter (fun (time, pid) -> Recflow_machine.Cluster.fail_at cluster ~time pid) plan

let single ~time pid = [ (time, pid) ]

let at_fractions ~makespan specs =
  List.map
    (fun (frac, pid) ->
      let frac = Float.min 0.99 (Float.max 0.01 frac) in
      (int_of_float (frac *. float_of_int makespan), pid))
    specs

let fresh_victims ~rng ~procs n =
  let pool = Array.init procs Fun.id in
  Recflow_sim.Rng.shuffle rng pool;
  Array.to_list (Array.sub pool 0 (min n procs))

let random_burst ~rng ~procs ~count ~lo ~hi =
  if procs <= 0 then invalid_arg "Plan.random_burst: procs must be positive";
  if count < 0 then invalid_arg "Plan.random_burst: negative count";
  if hi < lo then invalid_arg "Plan.random_burst: empty time range";
  let victims = fresh_victims ~rng ~procs count in
  List.map (fun v -> (Recflow_sim.Rng.int_in rng lo hi, v)) victims
  |> List.sort compare

let poisson ~rng ~procs ~mean_interval ~until =
  if procs <= 0 then invalid_arg "Plan.poisson: procs must be positive";
  if mean_interval <= 0.0 then invalid_arg "Plan.poisson: mean_interval must be positive";
  if until < 0 then invalid_arg "Plan.poisson: negative horizon";
  let victims = fresh_victims ~rng ~procs procs in
  let rec go t victims acc =
    match victims with
    | [] -> List.rev acc
    | v :: rest ->
      let t = t +. Recflow_sim.Rng.exponential rng mean_interval in
      if int_of_float t > until then List.rev acc
      else go t rest ((int_of_float t, v) :: acc)
  in
  go 0.0 victims []

(* Chaos-spec combinators: build a network fault plan by piping
   [Chaos.none] through these, then place it in [Config.chaos]. *)

let drop_rate r spec = { spec with Chaos.drop_rate = r }

let duplicate_rate r spec = { spec with Chaos.dup_rate = r }

let reorder ~rate ~spread spec = { spec with Chaos.reorder_rate = rate; reorder_spread = spread }

let delay_spikes ~rate ~max_delay spec =
  { spec with Chaos.spike_rate = rate; spike_max = max_delay }

let partition ~from ~until ~groups spec =
  {
    spec with
    Chaos.partitions =
      spec.Chaos.partitions @ [ { Chaos.p_from = from; p_until = until; groups } ];
  }

module Pick = struct
  (* Activations live at [time]: activated at or before, not completed/
     aborted before.  Returns (stamp, proc) pairs (latest activation per
     stamp). *)
  let live_activations journal ~time =
    let latest : (int list, Ids.proc_id * bool) Hashtbl.t = Hashtbl.create 128 in
    List.iter
      (fun (e : Journal.entry) ->
        if e.Journal.time <= time then begin
          let key = Stamp.digits e.Journal.stamp in
          match e.Journal.event with
          | Journal.Activated { proc; _ } -> Hashtbl.replace latest key (proc, true)
          | Journal.Completed _ | Journal.Aborted _ -> (
            match Hashtbl.find_opt latest key with
            | Some (proc, _) -> Hashtbl.replace latest key (proc, false)
            | None -> ())
          | _ -> ()
        end)
      (Journal.entries journal);
    Hashtbl.fold
      (fun key (proc, live) acc -> if live then (Stamp.of_digits key, proc) :: acc else acc)
      latest []
    |> List.sort (fun (a, _) (b, _) -> Stamp.compare a b)

  let busiest_at journal ~time ~exclude =
    let tally = Hashtbl.create 16 in
    List.iter
      (fun (_, proc) ->
        if proc >= 0 && not (List.mem proc exclude) then
          Hashtbl.replace tally proc (1 + Option.value ~default:0 (Hashtbl.find_opt tally proc)))
      (live_activations journal ~time);
    Hashtbl.fold
      (fun proc n acc ->
        match acc with
        | Some (_, best) when best >= n -> acc
        | _ -> Some (proc, n))
      tally None
    |> Option.map fst

  let host_of journal ~stamp ~time =
    live_activations journal ~time
    |> List.find_opt (fun (s, _) -> Stamp.equal s stamp)
    |> Option.map snd

  let parent_grandparent_pair journal ~time =
    let live = live_activations journal ~time in
    let host s = List.find_opt (fun (s', _) -> Stamp.equal s' s) live |> Option.map snd in
    (* Look for a live task C at depth >= 2 whose parent and grandparent
       activations live on distinct processors. *)
    let rec search = function
      | [] -> None
      | (stamp, _) :: rest -> (
        match Stamp.parent stamp with
        | None -> search rest
        | Some pstamp -> (
          match Stamp.parent pstamp with
          | None -> search rest
          | Some gstamp -> (
            match (host pstamp, host gstamp) with
            | Some ph, Some gh when ph <> gh && ph >= 0 && gh >= 0 -> Some (ph, gh)
            | _ -> search rest)))
    in
    search (List.rev live)

  let disjoint_pair journal ~time =
    let live = live_activations journal ~time in
    (* Hosts of tasks under distinct root children: failures there touch
       disjoint branches of the call tree. *)
    let branch stamp = match Stamp.digits stamp with [] -> None | d :: _ -> Some d in
    let rec search = function
      | [] -> None
      | (s1, p1) :: rest -> (
        match branch s1 with
        | None -> search rest
        | Some b1 -> (
          let other =
            List.find_opt
              (fun (s2, p2) ->
                p2 <> p1 && p2 >= 0 && match branch s2 with Some b2 -> b2 <> b1 | None -> false)
              rest
          in
          match other with
          | Some (_, p2) when p1 >= 0 -> Some (p1, p2)
          | _ -> search rest))
    in
    search live
end
