type case = C1 | C2 | C3 | C4 | C5 | C6 | C7 | C8

type timeline = {
  c_invoked : int option;
  c_completed : int option;
  p_failed : int;
  p'_invoked : int option;
  p'_completed : int option;
  c'_invoked : int option;
  c'_completed : int option;
}

let classify tl =
  match tl.c_invoked with
  | None -> C1
  | Some _ -> (
    match tl.c_completed with
    | None -> C2
    | Some done_at ->
      if done_at < tl.p_failed then C3
      else begin
        (* Completion at or after the failure instant counts as "after P
           dies": the failure event was dispatched first. *)
        let after threshold = match threshold with Some t -> done_at >= t | None -> false in
        if after tl.p'_completed then C8
        else if after tl.c'_completed then C7
        else if after tl.c'_invoked then C6
        else if after tl.p'_invoked then C5
        else C4
      end)

let case_number = function
  | C1 -> 1
  | C2 -> 2
  | C3 -> 3
  | C4 -> 4
  | C5 -> 5
  | C6 -> 6
  | C7 -> 7
  | C8 -> 8

let to_string c = Printf.sprintf "case %d" (case_number c)

let description = function
  | C1 -> "C has never been invoked"
  | C2 -> "C will never complete"
  | C3 -> "C completes before P dies"
  | C4 -> "C completes after P dies, before P' is invoked"
  | C5 -> "C completes after P' is invoked, before C' is invoked"
  | C6 -> "C completes after C' is invoked"
  | C7 -> "C completes after C' has completed"
  | C8 -> "C completes after P' has completed"

let all = [ C1; C2; C3; C4; C5; C6; C7; C8 ]
