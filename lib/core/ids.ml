type proc_id = int

type task_id = int

let super_root = -1

let no_task = -1

let proc_to_string p = if p = super_root then "SR" else Printf.sprintf "P%d" p

let pp_proc ppf p = Format.pp_print_string ppf (proc_to_string p)
