(** The spawn/reduction state machine of §4.3.2 (Figures 6–7).

    Evaluation of a three-task chain G → P → C passes through seven states:

    - [A] — G evaluating, P not yet spawned (no pointers);
    - [B] — P's packet in transit / queued, not yet acknowledged
      (transient: a consequence of dynamic load balancing);
    - [C_established] — P absorbed by a processor and acknowledged; G holds
      a parent→child pointer to P;
    - [D] — C's packet in transit / queued (transient);
    - [E] — C absorbed and acknowledged; full G→P→C chain live;
    - [F] — C has returned its result to P (C reduced);
    - [G_done] — P has returned to G (P reduced).

    §4.3.2 argues residue-freedom: fail P in any state and neither G nor C
    is corrupted — G times out and re-issues (states b/c), a stranded C
    either aborts or returns via the grandparent (states d/e, analysed by
    the 8 cases of §4.1).  The machine layer tags each task's lifecycle with
    these states; the F6 experiment fails P in every state and checks the
    final answer. *)

type t = A | B | C_established | D | E | F | G_done

val all : t list

val to_string : t -> string

val label : t -> string
(** Lower-case figure label: "a" .. "g". *)

val of_label : string -> t option

val is_transient : t -> bool
(** [B] and [D]: packet in flight, existence not yet acknowledged. *)

val next : t -> t option
(** Successor in the normal (fault-free) progression; [None] for [G_done]. *)

val pointers : t -> string list
(** The inter-task pointers present in the state (Figure 7), as
    human-readable strings like "G->P", "P->G(gp of C)". *)
