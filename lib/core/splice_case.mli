(** Classification of the eight orderings of §4.1 / Figure 5.

    For a child task C of a failed parent P, with P′ the recovery twin of P
    and C′ the clone of C spawned by P′, the paper enumerates every
    possible ordering of C's completion relative to the recovery timeline

    {v P fails  →  P′ invoked  →  C′ invoked  →  C′ completed v}

    Case 1: C never invoked.            Case 2: C never completes.
    Case 3: C completes before P dies.  Case 4: C completes after P dies,
    before P′ invoked.                  Case 5: after P′, before C′ invoked.
    Case 6: after C′ invoked, before C′ completes.
    Case 7: after C′ completes.         Case 8: after P′ completes.

    The experiment harness records the relevant timestamps during a run and
    uses {!classify} to bucket what actually happened; tests drive crafted
    schedules to reach each case and assert exactly-once result semantics. *)

type case = C1 | C2 | C3 | C4 | C5 | C6 | C7 | C8

type timeline = {
  c_invoked : int option;
  c_completed : int option;
  p_failed : int;
  p'_invoked : int option;
  p'_completed : int option;
  c'_invoked : int option;
  c'_completed : int option;
}

val classify : timeline -> case
(** Buckets a timeline.  Ties (equal timestamps) resolve toward the later
    case, matching the discrete-event scheduler's FIFO tie-breaking where
    the completion is processed after the invocation it coincides with.
    Precedence: case 8 (completion after P′ completed) is checked before
    cases 6–7, mirroring the paper's narrative where case 8 is "after
    everything is completed". *)

val case_number : case -> int

val to_string : case -> string

val description : case -> string
(** The paper's one-line description of the case. *)

val all : case list
