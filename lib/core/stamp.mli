(** Level stamps (§3.1).

    The root task carries the empty stamp; a task's k-th spawned child
    carries its parent's stamp with digit [k] appended.  Stamps therefore
    encode the program's call-tree structure: [a] is a (proper) ancestor of
    [b] iff [a] is a proper prefix of [b].  Uniqueness is guaranteed by the
    program structure — no clocks, no coordination — and stamping is fully
    asynchronous, exactly as the paper requires.

    "Digit" is generic (any non-negative int), matching the paper's remark
    that the term is not tied to a radix. *)

type t

val root : t

val child : t -> int -> t
(** [child s k] appends digit [k].
    @raise Invalid_argument if [k < 0]. *)

val parent : t -> t option
(** [None] for the root stamp. *)

val depth : t -> int
(** Root has depth 0.  O(1). *)

val digit : t -> int -> int
(** [digit s i] is the i-th digit from the root, [0 <= i < depth s] — the
    per-digit accessor the checkpoint-table trie walks with, so indexing a
    stamp never materialises a digit list.
    @raise Invalid_argument out of range. *)

val digits : t -> int list

val of_digits : int list -> t
(** @raise Invalid_argument on a negative digit. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic; ancestors sort before descendants. *)

val is_ancestor : t -> t -> bool
(** [is_ancestor a b]: [a] is a *proper* ancestor of [b]. *)

val is_descendant : t -> t -> bool
(** [is_descendant a b]: [a] is a proper descendant of [b]. *)

val related : t -> t -> bool
(** Same genealogical line: equal, ancestor or descendant. *)

val common_ancestor : t -> t -> t
(** Longest common prefix. *)

val max_digit : t -> int option
(** Largest digit anywhere in the stamp; [None] for the root.  Used by the
    static analyser's gauntlet: every observed digit must lie strictly
    below the spawning function's static fan-out bound (the digit is the
    per-activation spawn counter, so bound soundness shows here). *)

val to_string : t -> string
(** Root prints as "ε", others as dotted digits, e.g. "0.2.1". *)

val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit

val hash : t -> int
(** Structural hash, computed once per stamp and cached (amortised O(1)).
    The value is identical to [Hashtbl.hash (digits s)] — placement keys
    are derived from it, so it is part of the determinism contract. *)
