(** Identifier types shared by the recovery structures and the machine.

    Processor ids are small ints assigned by the cluster; {!super_root} is
    the virtual always-alive processor of §4.3.1 that parents every user
    program so that even the root task has a functional checkpoint.  Task
    ids are globally unique (a cluster-wide counter); they identify
    *activations*, so a regenerated task gets a fresh task id but keeps the
    level stamp of the task it replaces. *)

type proc_id = int

type task_id = int

val super_root : proc_id
(** Virtual parent processor of all root tasks; never fails. *)

val no_task : task_id
(** Sentinel for "no such task" (the super-root's own activation). *)

val pp_proc : Format.formatter -> proc_id -> unit
(** Prints "SR" for the super-root, "P<n>" otherwise. *)

val proc_to_string : proc_id -> string
