module Value = Recflow_lang.Value

type link = { task : Ids.task_id; proc : Ids.proc_id; slot : int }

type t = {
  stamp : Stamp.t;
  fname : string;
  args : Value.t array;
  parent : link;
  grandparent : link option;
  ancestors : link list;
}

let root ~fname ~args ~super_slot =
  {
    stamp = Stamp.root;
    fname;
    args;
    parent = { task = Ids.no_task; proc = Ids.super_root; slot = super_slot };
    grandparent = None;
    ancestors = [];
  }

let make ~stamp ~fname ~args ~parent ~grandparent ~ancestors =
  { stamp; fname; args; parent; grandparent; ancestors }

let reparent t ~parent ~grandparent = { t with parent; grandparent }

let describe t =
  Printf.sprintf "%s@%s -> task%d on %s" t.fname (Stamp.to_string t.stamp) t.parent.task
    (Ids.proc_to_string t.parent.proc)

let equal_identity a b = Stamp.equal a.stamp b.stamp && String.equal a.fname b.fname
