(** Majority voting over replicated task results (§5.3).

    An applicative system emulates hardware redundancy by replicating a
    task packet [k] ways; replicas execute asynchronously on distinct
    processors and results return at random times.  The originator takes a
    majority consensus as the answer — and, crucially, "does not have to
    wait for the slowest answer if it has received identical results from
    the majority" — so {!add} decides as soon as any value reaches
    ⌊k/2⌋+1 confirmations.

    With fail-stop processors all delivered results are identical (the
    language is determinate); the voter nevertheless tolerates Byzantine
    *values* so the Q6 experiment can also inject silent corruption.
    {!give_up} handles the degenerate end: when so many replicas are lost
    that a majority is impossible, the caller may accept a plurality or
    fail over to checkpoint-based recovery. *)

type 'a outcome =
  | Undecided  (** keep waiting *)
  | Decided of 'a  (** a value reached majority *)
  | Inconclusive  (** all accounted for, no majority (split or losses) *)

type 'a t

val create : replicas:int -> equal:('a -> 'a -> bool) -> 'a t
(** @raise Invalid_argument unless [replicas >= 1]. *)

val replicas : 'a t -> int

val majority : 'a t -> int
(** ⌊k/2⌋ + 1. *)

val add : 'a t -> 'a -> 'a outcome
(** Record one replica's result.  Once [Decided], further results are
    absorbed and the decision stands. *)

val lose : 'a t -> 'a outcome
(** Record that one replica will never answer (its processor died).  May
    yield [Inconclusive] when a majority becomes impossible, or [Decided]
    when every surviving replica already agrees. *)

val received : 'a t -> int

val lost : 'a t -> int

val decision : 'a t -> 'a option

val leader : 'a t -> ('a * int) option
(** Current plurality value and its count. *)

val give_up : 'a t -> 'a option
(** Abandon the vote and accept what is on the table: the decision if one
    was reached, otherwise the strict-plurality value.  [None] when the
    tallies are empty or the top count is tied between distinct values —
    in that case the caller must fail over to checkpoint-based recovery. *)
