(* Packed representation.  The original implementation was a reversed
   [int list]; every comparison-shaped operation (is_ancestor, compare,
   common_ancestor, hash) had to allocate a full reversed copy of both
   stamps before looking at a single digit.  A stamp is now a single int
   array:

     s.(0)          cached structural hash, -1 until first demanded
     s.(1) = d >= 0 packed layout: depth is [d] and slots 2.. hold
                    ceil(d/7) words of seven digit-bytes each, big-endian
                    within the word (digit [i] sits at bit 8*(6 - i mod 7)
                    of word [2 + i/7]); unused trailing bytes are zero
     s.(1) < 0      spill layout for digits > 255 (permitted by the API,
                    never produced by fan-out-bounded programs): depth is
                    [-s.(1) - 1] and slots 2.. hold the digits verbatim

   Digits are per-activation spawn counters bounded by the static fan-out,
   so seven bytes per word captures every stamp a real program makes: the
   comparison loops touch ceil(depth/7) words instead of [depth] list
   cells, and construction is one small allocation.  Big-endian byte order
   makes word comparison agree with lexicographic digit comparison, and
   zero padding is harmless because depth disambiguates (words equal, then
   the shorter stamp is the prefix).  Operations between two packed stamps
   take the word-wise fast paths below; anything touching a spill stamp
   falls back to generic per-digit loops, so the two layouts never need to
   be canonical with respect to each other.

   Invariant: slots 1.. are never mutated after construction.  Slot 0 is
   lazily filled (see [hash]); nothing outside this module may observe it,
   so [t] must never meet polymorphic equality/hash — [equal]/[compare]/
   [hash] below are the only lawful comparisons. *)

type t = int array

let root = [| -1; 0 |]

let depth s =
  let d = Array.unsafe_get s 1 in
  if d >= 0 then d else -d - 1

let digit s i =
  if i < 0 || i >= depth s then invalid_arg "index out of bounds";
  let d = Array.unsafe_get s 1 in
  if d >= 0 then (Array.unsafe_get s (2 + (i / 7)) lsr (8 * (6 - (i mod 7)))) land 0xff
  else Array.unsafe_get s (2 + i)

let digits s =
  let rec go i acc = if i < 0 then acc else go (i - 1) (digit s i :: acc) in
  go (depth s - 1) []

(* Spill stamp holding the digits of [s] (any layout) plus appended [k]. *)
let spill_child s k =
  let d = depth s in
  let a = Array.make (d + 3) k in
  a.(0) <- -1;
  a.(1) <- -(d + 1) - 1;
  for i = 0 to d - 1 do
    a.(2 + i) <- digit s i
  done;
  a

let child s k =
  if k < 0 then invalid_arg "Stamp.child: negative digit";
  let d = Array.unsafe_get s 1 in
  if d >= 0 && k <= 0xff then
    if d mod 7 = 0 then
      (* The new digit opens a fresh word.  Common cases build as array
         literals, which ocamlopt allocates inline; [Array.make] is a C
         call per stamp. *)
      match s with
      | [| _; _ |] -> [| -1; 1; k lsl 48 |]
      | [| _; _; w0 |] -> [| -1; d + 1; w0; k lsl 48 |]
      | [| _; _; w0; w1 |] -> [| -1; d + 1; w0; w1; k lsl 48 |]
      | [| _; _; w0; w1; w2 |] -> [| -1; d + 1; w0; w1; w2; k lsl 48 |]
      | s ->
        let n = Array.length s in
        let a = Array.make (n + 1) (k lsl 48) in
        Array.blit s 2 a 2 (n - 2);
        a.(0) <- -1;
        a.(1) <- d + 1;
        a
    else begin
      let j = Array.length s - 1 in
      let nw = Array.unsafe_get s j lor (k lsl (8 * (6 - (d mod 7)))) in
      match s with
      | [| _; _; _ |] -> [| -1; d + 1; nw |]
      | [| _; _; w0; _ |] -> [| -1; d + 1; w0; nw |]
      | [| _; _; w0; w1; _ |] -> [| -1; d + 1; w0; w1; nw |]
      | [| _; _; w0; w1; w2; _ |] -> [| -1; d + 1; w0; w1; w2; nw |]
      | s ->
        let a = Array.copy s in
        a.(0) <- -1;
        a.(1) <- d + 1;
        a.(j) <- nw;
        a
    end
  else spill_child s k

let of_digits ds =
  List.iter (fun d -> if d < 0 then invalid_arg "Stamp.of_digits: negative digit") ds;
  match List.length ds with
  | 0 -> root
  | d when List.for_all (fun k -> k <= 0xff) ds ->
    let a = Array.make (((d + 6) / 7) + 2) 0 in
    a.(0) <- -1;
    a.(1) <- d;
    List.iteri
      (fun i k ->
        let j = 2 + (i / 7) in
        a.(j) <- a.(j) lor (k lsl (8 * (6 - (i mod 7)))))
      ds;
    a
  | d ->
    let a = Array.make (d + 2) 0 in
    a.(0) <- -1;
    a.(1) <- -d - 1;
    List.iteri (fun i k -> a.(2 + i) <- k) ds;
    a

(* First [l] digits of [s]; [0 <= l <= depth s]. *)
let prefix s l =
  if l = 0 then root
  else if l = depth s then s
  else if Array.unsafe_get s 1 >= 0 then begin
    let nw = (l + 6) / 7 in
    let a = Array.make (nw + 2) 0 in
    a.(0) <- -1;
    a.(1) <- l;
    Array.blit s 2 a 2 nw;
    let r = l mod 7 in
    if r > 0 then a.(nw + 1) <- a.(nw + 1) land (((1 lsl (8 * r)) - 1) lsl (8 * (7 - r)));
    a
  end
  else begin
    let a = Array.make (l + 2) 0 in
    a.(0) <- -1;
    a.(1) <- -l - 1;
    Array.blit s 2 a 2 l;
    a
  end

let parent s = match depth s with 0 -> None | d -> Some (prefix s (d - 1))

(* Generic per-digit fallbacks, lawful for any layout mix. *)

let slow_equal a b =
  let d = depth a in
  depth b = d
  && (let rec eq i = i = d || (digit a i = digit b i && eq (i + 1)) in
      eq 0)

let slow_compare a b =
  let da = depth a and db = depth b in
  let n = if da < db then da else db in
  let rec go i =
    if i = n then Stdlib.compare da db
    else
      let c = Stdlib.compare (digit a i) (digit b i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let slow_is_ancestor a b =
  let da = depth a in
  da < depth b
  && (let rec pre i = i = da || (digit a i = digit b i && pre (i + 1)) in
      pre 0)

let equal a b =
  a == b
  ||
  let da = Array.unsafe_get a 1 and db = Array.unsafe_get b 1 in
  if da >= 0 && db >= 0 then
    da = db
    && (let rec eq j =
          j = 1 || (Array.unsafe_get a j = Array.unsafe_get b j && eq (j - 1))
        in
        eq (Array.length a - 1))
  else slow_equal a b

(* Lexicographic on forward digits; a proper prefix sorts first — the same
   order [Stdlib.compare] gave on forward digit lists.  Packed words are
   positive ints, so [Stdlib.compare] on them is an unsigned byte-string
   comparison, i.e. exactly digit-lexicographic; zero padding ties are
   broken by depth. *)
let compare a b =
  let da = Array.unsafe_get a 1 and db = Array.unsafe_get b 1 in
  if da >= 0 && db >= 0 then begin
    let wa = Array.length a and wb = Array.length b in
    let n = if wa < wb then wa else wb in
    let rec go j =
      if j = n then Stdlib.compare da db
      else
        let x = Array.unsafe_get a j and y = Array.unsafe_get b j in
        if x = y then go (j + 1) else Stdlib.compare x y
    in
    go 2
  end
  else slow_compare a b

(* [a] proper prefix of [b]: the full words of [a] match and the leading
   [depth a mod 7] bytes of its final partial word match. *)
let is_ancestor a b =
  let da = Array.unsafe_get a 1 and db = Array.unsafe_get b 1 in
  if da >= 0 && db >= 0 then
    da < db
    && (let q = da / 7 and r = da mod 7 in
        let rec words j =
          j = q + 2 || (Array.unsafe_get a j = Array.unsafe_get b j && words (j + 1))
        in
        words 2
        && (r = 0
            || (Array.unsafe_get a (q + 2) lxor Array.unsafe_get b (q + 2))
                 land (((1 lsl (8 * r)) - 1) lsl (8 * (7 - r)))
               = 0))
  else slow_is_ancestor a b

let is_descendant a b = is_ancestor b a

let related a b = equal a b || is_ancestor a b || is_ancestor b a

let common_ancestor a b =
  let da = depth a and db = depth b in
  let n = if da < db then da else db in
  let rec lcp i = if i < n && digit a i = digit b i then lcp (i + 1) else i in
  let l = lcp 0 in
  if l = da then a else if l = db then b else prefix a l

let max_digit s =
  match depth s with
  | 0 -> None
  | d ->
    let rec go i m = if i = d then m else go (i + 1) (max m (digit s i)) in
    Some (go 0 0)

let to_string s =
  match depth s with
  | 0 -> "\xce\xb5" (* ε *)
  | d ->
    let buf = Buffer.create (2 * d) in
    for i = 0 to d - 1 do
      if i > 0 then Buffer.add_char buf '.';
      Buffer.add_string buf (string_of_int (digit s i))
    done;
    Buffer.contents buf

let of_string str =
  if str = "\xce\xb5" || str = "" then Ok root
  else
    let parts = String.split_on_char '.' str in
    let rec go acc = function
      | [] -> Ok (of_digits (List.rev acc))
      | p :: rest -> (
        match int_of_string_opt p with
        | Some d when d >= 0 -> go (d :: acc) rest
        | _ -> Error (Printf.sprintf "bad stamp digit %S in %S" p str))
    in
    go [] parts

let pp ppf s = Format.pp_print_string ppf (to_string s)

(* Slot 0 < 0 means not yet computed: [child] must not pay for a hash the
   stamp may never need.  The value, once computed, must stay
   *value-identical* to the historical [Hashtbl.hash (digits s)]:
   processor-placement keys are derived from it (node spawn/respawn,
   super-root dispatch), so changing the hash function would re-route tasks
   and break journal replay compatibility.  ([Hashtbl.hash] is
   non-negative, so -1 is a safe sentinel; the fill-in is idempotent,
   making a racy duplicate computation benign.) *)
let hash s =
  let h = Array.unsafe_get s 0 in
  if h >= 0 then h
  else begin
    let h = Hashtbl.hash (digits s) in
    Array.unsafe_set s 0 h;
    h
  end
