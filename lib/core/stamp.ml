(* Digits are stored reversed (deepest first) so [child] is O(1). *)
type t = int list

let root = []

let child s k =
  if k < 0 then invalid_arg "Stamp.child: negative digit";
  k :: s

let parent = function [] -> None | _ :: rest -> Some rest

let depth = List.length

let digits s = List.rev s

let of_digits ds =
  List.iter (fun d -> if d < 0 then invalid_arg "Stamp.of_digits: negative digit") ds;
  List.rev ds

let equal a b = a = b

let compare a b = Stdlib.compare (digits a) (digits b)

(* [a] proper prefix of [b]. *)
let is_ancestor a b =
  let da = digits a and db = digits b in
  let rec prefix xs ys =
    match (xs, ys) with
    | [], [] -> false  (* equal, not proper *)
    | [], _ :: _ -> true
    | _ :: _, [] -> false
    | x :: xs', y :: ys' -> x = y && prefix xs' ys'
  in
  prefix da db

let is_descendant a b = is_ancestor b a

let related a b = equal a b || is_ancestor a b || is_ancestor b a

let common_ancestor a b =
  let rec go xs ys acc =
    match (xs, ys) with
    | x :: xs', y :: ys' when x = y -> go xs' ys' (x :: acc)
    | _ -> List.rev acc
  in
  of_digits (go (digits a) (digits b) [])

let max_digit s = match s with [] -> None | _ -> Some (List.fold_left max 0 s)

let to_string s =
  match digits s with
  | [] -> "\xce\xb5" (* ε *)
  | ds -> String.concat "." (List.map string_of_int ds)

let of_string str =
  if str = "\xce\xb5" || str = "" then Ok root
  else
    let parts = String.split_on_char '.' str in
    let rec go acc = function
      | [] -> Ok (of_digits (List.rev acc))
      | p :: rest -> (
        match int_of_string_opt p with
        | Some d when d >= 0 -> go (d :: acc) rest
        | _ -> Error (Printf.sprintf "bad stamp digit %S in %S" p str))
    in
    go [] parts

let pp ppf s = Format.pp_print_string ppf (to_string s)

let hash s = Hashtbl.hash (digits s)
