(** Per-processor functional-checkpoint table (§3.2).

    Each processor keeps, for every peer processor N, the checkpoints of
    tasks it has spawned *to* N.  In [Topmost] mode the table implements
    the paper's rule: a new packet whose stamp descends from an existing
    checkpoint in the same entry is *covered* and not recorded (its
    ancestor's re-issue would regenerate it anyway); symmetrically, a new
    ancestor evicts the descendants it covers.  [Keep_all] mode records
    everything — the Q8 ablation baseline.

    On failure of N, {!on_failure} surrenders the entry: exactly the tasks
    this processor must re-issue to fulfil its share of the collective
    recovery.  When a child's result returns, {!discharge} drops its
    checkpoint (strict evaluation means a completed child's whole subtree
    is complete, so coverage is not lost).

    Each entry is indexed as a digit trie over stamps (a node per stamp
    prefix), so {!record}'s covered/dominates checks and {!discharge} cost
    O(stamp depth) rather than a scan of the entry — entry size does not
    matter, which keeps [Keep_all] (the Q8 space/time ablation) usable at
    scale.  {!on_failure} and {!entry} still return stamp-sorted lists. *)

type mode = Topmost | Keep_all

type t

val create : ?mode:mode -> unit -> t
(** Default mode is [Topmost]. *)

val mode : t -> mode

val record : t -> dest:Ids.proc_id -> Packet.t -> [ `Recorded | `Covered ]
(** File a checkpoint for a task spawned to [dest].  In [Topmost] mode
    returns [`Covered] (and stores nothing) when an existing checkpoint in
    the entry is an ancestor or the identical stamp. *)

val discharge : t -> dest:Ids.proc_id -> Stamp.t -> bool
(** Remove the checkpoint with exactly this stamp from entry [dest];
    [true] if something was removed. *)

val on_failure : t -> failed:Ids.proc_id -> Packet.t list
(** Checkpoints held for tasks on the failed processor, ordered by stamp
    (ancestors first); the entry is cleared — re-issued tasks will be
    re-checkpointed against their new destinations. *)

val entry : t -> dest:Ids.proc_id -> Packet.t list
(** Current checkpoints for [dest], ordered by stamp (read-only peek). *)

val total_size : t -> int
(** Number of checkpoints across all entries (storage metric for Q8). *)

val destinations : t -> Ids.proc_id list
(** Sorted peers with a non-empty entry. *)
