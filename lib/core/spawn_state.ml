type t = A | B | C_established | D | E | F | G_done

let all = [ A; B; C_established; D; E; F; G_done ]

let label = function
  | A -> "a"
  | B -> "b"
  | C_established -> "c"
  | D -> "d"
  | E -> "e"
  | F -> "f"
  | G_done -> "g"

let to_string t = "state " ^ label t

let of_label = function
  | "a" -> Some A
  | "b" -> Some B
  | "c" -> Some C_established
  | "d" -> Some D
  | "e" -> Some E
  | "f" -> Some F
  | "g" -> Some G_done
  | _ -> None

let is_transient = function B | D -> true | A | C_established | E | F | G_done -> false

let next = function
  | A -> Some B
  | B -> Some C_established
  | C_established -> Some D
  | D -> Some E
  | E -> Some F
  | F -> Some G_done
  | G_done -> None

let pointers = function
  | A -> []
  | B -> [ "G->P(packet)" ]
  | C_established -> [ "G->P"; "P->G" ]
  | D -> [ "G->P"; "P->G"; "P->C(packet)"; "C->G(grandparent)" ]
  | E -> [ "G->P"; "P->G"; "P->C"; "C->P"; "C->G(grandparent)" ]
  | F -> [ "G->P"; "P->G" ]
  | G_done -> []
