type 'a outcome = Undecided | Decided of 'a | Inconclusive

type 'a t = {
  k : int;
  equal : 'a -> 'a -> bool;
  mutable tallies : ('a * int) list;
  mutable lost : int;
  mutable decision : 'a option;
  mutable inconclusive : bool;
}

let create ~replicas ~equal =
  if replicas < 1 then invalid_arg "Vote.create: need at least one replica";
  { k = replicas; equal; tallies = []; lost = 0; decision = None; inconclusive = false }

let replicas t = t.k

let majority t = (t.k / 2) + 1

let received t = List.fold_left (fun acc (_, n) -> acc + n) 0 t.tallies

let lost t = t.lost

let decision t = t.decision

let leader t =
  List.fold_left
    (fun acc (v, n) -> match acc with Some (_, m) when m >= n -> acc | _ -> Some (v, n))
    None t.tallies

let state t =
  match t.decision with
  | Some v -> Decided v
  | None -> if t.inconclusive then Inconclusive else Undecided

(* Re-evaluate after any tally/loss change. *)
let settle t =
  (match leader t with
  | Some (v, n) when n >= majority t -> t.decision <- Some v
  | _ -> ());
  if t.decision = None then begin
    let outstanding = t.k - received t - t.lost in
    if outstanding = 0 then begin
      (* Everyone accounted for: unanimity among survivors decides even
         below majority (identical results, just fewer of them);
         disagreement or a total wipe-out is inconclusive. *)
      match t.tallies with
      | [ (v, _) ] -> t.decision <- Some v
      | [] | _ :: _ :: _ -> t.inconclusive <- true
    end
    else begin
      (* Early impossibility: even if every outstanding replica voted with
         the current leader it could not reach majority, and survivors
         disagree. *)
      let best = match leader t with Some (_, n) -> n | None -> 0 in
      if best + outstanding < majority t && List.length t.tallies > 1 then t.inconclusive <- true
    end
  end;
  state t

let add t v =
  match t.decision with
  | Some _ -> state t
  | None ->
    let rec bump = function
      | [] -> [ (v, 1) ]
      | (u, n) :: rest -> if t.equal u v then (u, n + 1) :: rest else (u, n) :: bump rest
    in
    t.tallies <- bump t.tallies;
    settle t

let lose t =
  match t.decision with
  | Some _ -> state t
  | None ->
    t.lost <- t.lost + 1;
    settle t

let give_up t =
  match t.decision with
  | Some v -> Some v
  | None ->
    (* Strict plurality only: a tie between distinct values carries no
       information, so the caller must fall back to recovery. *)
    let best = List.fold_left (fun acc (_, n) -> max acc n) 0 t.tallies in
    if best = 0 then None
    else
      match List.filter (fun (_, n) -> n = best) t.tallies with
      | [ (v, _) ] -> Some v
      | _ -> None
