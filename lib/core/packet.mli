(** Task packets (§2) — the unit of spawning, checkpointing and recovery.

    A packet contains "all necessary information ... to activate the child
    task": the function, its argument values, the level stamp, and the
    return linkage (parent task/processor/slot).  For splice recovery it
    additionally carries the grandparent linkage (§4.1) and, optionally,
    deeper ancestor links (the great-grandparent extension of §5.2).

    Packets are immutable; a functional checkpoint *is* a retained packet.
    Regenerating a task means re-submitting an identical packet — by
    determinacy the new activation yields the same answer. *)

type link = { task : Ids.task_id; proc : Ids.proc_id; slot : int }
(** Where a result must be delivered: the call slot [slot] of activation
    [task] living on processor [proc]. *)

type t = {
  stamp : Stamp.t;
  fname : string;
  args : Recflow_lang.Value.t array;
  parent : link;
  grandparent : link option;
      (** [None] only for the root packet held by the super-root. *)
  ancestors : link list;
      (** Further ancestor links, nearest first (great-grandparent, ...);
          populated when the §5.2 multi-fault extension is enabled. *)
}

val root : fname:string -> args:Recflow_lang.Value.t array -> super_slot:int -> t
(** The packet for a program's root task, parented on the super-root. *)

val make :
  stamp:Stamp.t ->
  fname:string ->
  args:Recflow_lang.Value.t array ->
  parent:link ->
  grandparent:link option ->
  ancestors:link list ->
  t

val reparent : t -> parent:link -> grandparent:link option -> t
(** Copy with fresh return linkage — used when a step-parent (twin) adopts
    the offspring of a dead task, and when re-issuing a checkpoint whose
    parent activation id changed. *)

val describe : t -> string
(** "fname@stamp → parent" one-liner for traces. *)

val equal_identity : t -> t -> bool
(** Same stamp and function — the notion of "the same task" used to match
    a regenerated twin with its dead original.  Argument values are not
    compared (by determinacy they agree when identities do). *)
