(* Indexed checkpoint tables.

   Each per-peer entry used to be a flat [Packet.t list]: [record]'s
   covered/dominates checks scanned the whole entry with stamp prefix
   comparisons (O(n) stamp walks per checkpoint, O(n^2) per run — far worse
   under [Keep_all], which is exactly the configuration the Q8 experiment
   stresses), and [discharge] filtered the full list.

   The entry is now a digit trie mirroring the call tree: a node per stamp
   prefix, packets stored at the node addressed by their stamp's digit
   path.  Because a stamp's ancestors are precisely its proper prefixes,
   walking the trie root-to-leaf visits every possible covering ancestor —
   [record]'s covered check, its descendant eviction (the subtree below the
   new node) and [discharge] are all O(depth) hops, independent of entry
   size.  Children are held in an int-keyed association list per node:
   digits are per-activation spawn counters, bounded by the program's
   static fan-out (typically < 8, and the PR-4 gauntlet asserts the bound
   holds at runtime), so a scan over unboxed int keys beats both a
   hashtable (hashing + bucket chasing per hop) and a digit-indexed array
   (repeated reallocation when a sparse high digit appears) at every
   fan-out the system produces.

   Peers are dense small ints ([Ids.proc_id]; the super-root is -1), so the
   per-peer entries live in an array indexed by [dest + 1] instead of a
   hashtable — the checkpoint fast path is then array-load + trie descent
   with no hashing and no option allocation.  [on_failure]/[entry] still
   surrender sorted lists, so callers see the exact pre-index behaviour. *)

type mode = Topmost | Keep_all

type node = {
  mutable packets : Packet.t list;
      (* newest first; all share the stamp addressed by this node's path.
         At most one element in [Topmost] mode (equal stamps are covered). *)
  mutable kids : (int * node) list;  (* keyed by next digit; fan-out bounded *)
}

type entry = { root : node; mutable count : int }

type t = { mode : mode; mutable entries : entry option array }

(* Shared "absent child" result so the descend loops never allocate an
   option.  Never mutated, never linked into a trie. *)
let nil_node = { packets = []; kids = [] }

let fresh_node () = { packets = []; kids = [] }

let create ?(mode = Topmost) () = { mode; entries = Array.make 16 None }

let mode t = t.mode

(* Entries are indexed by [dest + 1] so the super-root (-1) has a slot. *)
let slot_of dest = dest + 1

let entry_of t dest =
  let i = slot_of dest in
  let n = Array.length t.entries in
  if i >= n then begin
    let grown = Array.make (max (2 * n) (i + 1)) None in
    Array.blit t.entries 0 grown 0 n;
    t.entries <- grown
  end;
  match Array.unsafe_get t.entries i with
  | Some e -> e
  | None ->
    let e = { root = fresh_node (); count = 0 } in
    t.entries.(i) <- Some e;
    e

let find_entry t dest =
  let i = slot_of dest in
  if i < 0 || i >= Array.length t.entries then None else Array.unsafe_get t.entries i

let rec kid kids k =
  match kids with
  | [] -> nil_node
  | (d, n) :: rest -> if d = k then n else kid rest k

let kid_or_create node k =
  let n = kid node.kids k in
  if n != nil_node then n
  else begin
    let n = fresh_node () in
    node.kids <- (k, n) :: node.kids;
    n
  end

(* Walk to the node addressed by [stamp]'s digits; [nil_node] if absent. *)
let locate root stamp =
  let d = Stamp.depth stamp in
  let rec go node i =
    if i = d then node
    else
      let n = kid node.kids (Stamp.digit stamp i) in
      if n == nil_node then nil_node else go n (i + 1)
  in
  go root 0

let rec subtree_packets node acc =
  (* Prepend [node.packets] without reversing: equal-stamp packets must
     reach the stable sort newest-first, as the flat list did. *)
  let acc = List.fold_right (fun p acc -> p :: acc) node.packets acc in
  List.fold_left (fun acc (_, n) -> subtree_packets n acc) acc node.kids

let rec subtree_count node =
  List.fold_left (fun acc (_, n) -> acc + subtree_count n) (List.length node.packets) node.kids

let record t ~dest (p : Packet.t) =
  let e = entry_of t dest in
  let stamp = p.stamp in
  let d = Stamp.depth stamp in
  match t.mode with
  | Keep_all ->
    let rec descend node i =
      if i = d then begin
        node.packets <- p :: node.packets;
        e.count <- e.count + 1
      end
      else descend (kid_or_create node (Stamp.digit stamp i)) (i + 1)
    in
    descend e.root 0;
    `Recorded
  | Topmost ->
    (* Single descent: any populated node passed strictly before depth [d]
       is a proper ancestor of [stamp] — the new packet is covered.  The
       emptiness tests are pattern matches, not [<> []]: the latter is a
       polymorphic-compare call per hop on this hot path. *)
    let rec descend node i =
      match node.packets with
      | _ :: _ -> `Covered (* ancestor if i < d, identical stamp if i = d *)
      | [] ->
        if i = d then begin
          node.packets <- [ p ];
          (* The new checkpoint may dominate previously-recorded
             descendants (possible during recovery when an ancestor is
             re-spawned to the same destination); they live exactly in the
             subtree below this node — evict it wholesale.  A leaf (the
             overwhelmingly common case) has nothing below it. *)
          (match node.kids with
          | [] -> ()
          | _ :: _ ->
            let evicted = subtree_count node - 1 in
            if evicted > 0 then begin
              node.kids <- [];
              e.count <- e.count - evicted
            end);
          e.count <- e.count + 1;
          `Recorded
        end
        else descend (kid_or_create node (Stamp.digit stamp i)) (i + 1)
    in
    descend e.root 0

let discharge t ~dest stamp =
  match find_entry t dest with
  | None -> false
  | Some e ->
    let node = locate e.root stamp in
    (match node.packets with
    | [] -> false (* absent ([nil_node]) or already drained *)
    | ps ->
      e.count <- e.count - List.length ps;
      node.packets <- [];
      true)

let by_stamp (a : Packet.t) (b : Packet.t) = Stamp.compare a.stamp b.stamp

(* Collected order is arbitrary (trie walk), but the caller-visible order
   is fixed by the stable sort: distinct stamps by [Stamp.compare], equal
   stamps kept newest-first because each node's packets stay contiguous and
   newest-first in the collected list. *)
let sorted_packets e = List.stable_sort by_stamp (subtree_packets e.root [])

let on_failure t ~failed =
  match find_entry t failed with
  | None -> []
  | Some e ->
    let ps = sorted_packets e in
    t.entries.(slot_of failed) <- None;
    ps

let entry t ~dest =
  match find_entry t dest with None -> [] | Some e -> sorted_packets e

let total_size t =
  Array.fold_left (fun acc -> function None -> acc | Some e -> acc + e.count) 0 t.entries

let destinations t =
  (* Slot order is ascending dest order, so the result is already sorted. *)
  let acc = ref [] in
  for i = Array.length t.entries - 1 downto 0 do
    match Array.unsafe_get t.entries i with
    | Some e when e.count > 0 -> acc := (i - 1) :: !acc
    | _ -> ()
  done;
  !acc
