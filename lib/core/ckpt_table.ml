type mode = Topmost | Keep_all

type t = { mode : mode; entries : (Ids.proc_id, Packet.t list ref) Hashtbl.t }

let create ?(mode = Topmost) () = { mode; entries = Hashtbl.create 16 }

let mode t = t.mode

let entry_ref t dest =
  match Hashtbl.find_opt t.entries dest with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add t.entries dest r;
    r

let record t ~dest (p : Packet.t) =
  let r = entry_ref t dest in
  match t.mode with
  | Keep_all ->
    r := p :: !r;
    `Recorded
  | Topmost ->
    let covered =
      List.exists
        (fun (q : Packet.t) -> Stamp.equal q.stamp p.stamp || Stamp.is_ancestor q.stamp p.stamp)
        !r
    in
    if covered then `Covered
    else begin
      (* The new checkpoint may dominate previously-recorded descendants
         (possible during recovery when an ancestor is re-spawned to the
         same destination); evict them to keep the entry topmost-only. *)
      r := p :: List.filter (fun (q : Packet.t) -> not (Stamp.is_ancestor p.stamp q.stamp)) !r;
      `Recorded
    end

let discharge t ~dest stamp =
  match Hashtbl.find_opt t.entries dest with
  | None -> false
  | Some r ->
    let before = List.length !r in
    r := List.filter (fun (q : Packet.t) -> not (Stamp.equal q.stamp stamp)) !r;
    List.length !r < before

let by_stamp (a : Packet.t) (b : Packet.t) = Stamp.compare a.stamp b.stamp

let on_failure t ~failed =
  match Hashtbl.find_opt t.entries failed with
  | None -> []
  | Some r ->
    let ps = List.sort by_stamp !r in
    Hashtbl.remove t.entries failed;
    ps

let entry t ~dest =
  match Hashtbl.find_opt t.entries dest with
  | None -> []
  | Some r -> List.sort by_stamp !r

let total_size t = Hashtbl.fold (fun _ r acc -> acc + List.length !r) t.entries 0

let destinations t =
  Hashtbl.fold (fun dest r acc -> if !r = [] then acc else dest :: acc) t.entries []
  |> List.sort compare
