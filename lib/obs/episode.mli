(** Recovery-episode span analysis.

    Folds a run's {!Recflow_machine.Journal} into one span per injected
    failure: failure instant → first checkpoint reissue (detection) →
    orphan salvage / inheritance / aborts → quiesce of the recovery wave.
    Each span carries the derived metrics the paper's quantitative claims
    are about — detection latency, recovery latency, work lost and redone,
    salvaged orphan results — plus a histogram of the §4.1 / Figure 5
    orderings actually observed for the children of the tasks that died.

    Episodes partition time: a failure's window ends at the next failure
    (or the end of the journal), so overlapping recovery waves are
    attributed to the failure that started them. *)

module Journal = Recflow_machine.Journal
module Splice_case = Recflow_recovery.Splice_case
module Summary = Recflow_stats.Summary
module Counter = Recflow_stats.Counter

type t = {
  ordinal : int;  (** 1-based failure index within the run *)
  failed_proc : int;
  fail_time : int;
  window_end : int option;  (** next failure's time; [None] for the last episode *)
  detection_latency : int option;
      (** first checkpoint reissue ([Respawned]) minus [fail_time] *)
  recovery_latency : int option;  (** quiesce minus [fail_time] *)
  quiesce_time : int option;
      (** last recovery-attributable event: reissue, inheritance, relay,
          orphan bookkeeping, abort, or re-execution of a lost stamp *)
  lost_tasks : int;  (** tasks resident on the failed processor at death ([Lost] entries) *)
  lost_work : int;  (** busy ticks those tasks had consumed — work the failure destroyed *)
  reissued : int;  (** [Respawned] entries in the window *)
  inherited : int;
  relayed : int;
  salvaged_results : int;
      (** pre-failure orphan results spliced into a twin ([Result_accepted]
          whose producing task was spawned before the failure by a parent
          that died) *)
  orphans_dropped : int;
  aborted : int;
  duplicates_ignored : int;
  redone_tasks : int;
      (** stamps re-activated after the failure that had already been
          activated before it *)
  redone_work : int;
      (** ticks of pre-failure execution on redone stamps — the work the
          failure destroyed and the system repeated *)
  cases : (Splice_case.case * int) list;
      (** §4.1 ordering histogram over children of the dead tasks (only
          cases with a non-zero count appear) *)
}

val analyze : Journal.t -> t list
(** One episode per [Failure] entry, in failure order.  Runs without
    failures yield [[]]. *)

type aggregate = {
  episodes : int;
  detection : Summary.t;  (** over episodes with a detection latency *)
  recovery : Summary.t;
  redone_work_summary : Summary.t;
  total_reissued : int;
  total_salvaged : int;
  total_redone_work : int;
  case_counts : Counter.set;  (** keys ["case1"] .. ["case8"] *)
}

val aggregate : t list -> aggregate

val to_json : t -> Recflow_obs_core.Json.t

val aggregate_to_json : aggregate -> Recflow_obs_core.Json.t

val summary_to_json : Summary.t -> Recflow_obs_core.Json.t
(** [{"n":..,"mean":..,"min":..,"p50":..,"p95":..,"max":..}]; just
    [{"n":0}] when empty. *)

val pp : Format.formatter -> t -> unit
(** One-line human rendering for the CLI. *)
