(** Chrome-trace-format / Perfetto export of a run.

    Converts a {!Recflow_machine.Journal} into a [trace.json] loadable in
    [ui.perfetto.dev] (or [chrome://tracing]): one process group per
    simulated processor, task activations as duration slices laid out on
    greedily-reused lanes, recovery events (failures, reissues, relays,
    inheritance, drops) as instant events, and a per-processor occupancy
    counter track derived from {!Recflow_machine.Timeline.occupancy}.
    One simulation tick maps to one microsecond.

    The output is the "JSON array" flavour of the trace-event format: a
    top-level array where every element has at least ["ph"], ["ts"] and
    ["pid"] fields. *)

module Journal = Recflow_machine.Journal

val events : Journal.t -> nodes:int -> ?occupancy_buckets:int -> unit -> Recflow_obs_core.Json.t list
(** All trace events, metadata first.  [occupancy_buckets] (default 96)
    sizes the counter track; [0] disables it. *)

val to_json : Journal.t -> nodes:int -> ?occupancy_buckets:int -> unit -> Recflow_obs_core.Json.t
(** The events wrapped as a JSON array. *)

val write : path:string -> Journal.t -> nodes:int -> ?occupancy_buckets:int -> unit -> unit
(** [to_json] serialised to [path]. *)
