(** Chrome-trace-format / Perfetto export of a run.

    Converts a {!Recflow_machine.Journal} into a [trace.json] loadable in
    [ui.perfetto.dev] (or [chrome://tracing]): one process group per
    simulated processor, task activations as duration slices laid out on
    greedily-reused lanes, recovery events (failures, reissues, relays,
    inheritance, drops) as instant events, and a per-processor occupancy
    counter track derived from {!Recflow_machine.Timeline.occupancy}.
    One simulation tick maps to one microsecond.

    The output is the "JSON array" flavour of the trace-event format: a
    top-level array where every element has at least ["ph"], ["ts"] and
    ["pid"] fields. *)

module Journal = Recflow_machine.Journal

(** Incremental journal→trace conversion.  Feed entries as they are
    recorded (via {!Journal.attach_sink} and {!Stream.entry_sink}) and the
    trace events stream straight into any [Json.t] sink — a JSONL file,
    a sampler, a ring — retaining only the currently-open slices, never
    the journal.  Streaming mode omits the occupancy counter track, which
    needs the whole journal to reconstruct. *)
module Stream : sig
  type t

  val create : nodes:int -> sink:Recflow_obs_core.Json.t Recflow_obs_core.Sink.t -> t
  (** Emits the process-metadata header into [sink] immediately. *)

  val feed : t -> Journal.entry -> unit

  val finish : ?at:int -> t -> unit
  (** Close still-open slices (outcome ["unfinished"]) at [at] (default:
      the newest fed timestamp) and flush the sink.  Idempotent; the
      caller still owns and closes the sink itself. *)

  val open_slices : t -> int
  (** Currently retained open task slices — the stream's entire
      journal-derived state, bounded by peak task concurrency. *)

  val entry_sink : t -> Journal.entry Recflow_obs_core.Sink.t
  (** Adapter for {!Journal.attach_sink}: emit = {!feed}, close =
      {!finish}. *)
end

val events : Journal.t -> nodes:int -> ?occupancy_buckets:int -> unit -> Recflow_obs_core.Json.t list
(** All trace events, metadata first.  [occupancy_buckets] (default 96)
    sizes the counter track; [0] disables it. *)

val occupancy_events :
  Journal.t -> nodes:int -> buckets:int -> Recflow_obs_core.Json.t list
(** Just the per-processor occupancy counter track — what a streaming
    export appends after {!Stream.finish} when the journal is retained
    anyway. *)

val to_json : Journal.t -> nodes:int -> ?occupancy_buckets:int -> unit -> Recflow_obs_core.Json.t
(** The events wrapped as a JSON array. *)

val write : path:string -> Journal.t -> nodes:int -> ?occupancy_buckets:int -> unit -> unit
(** [to_json] serialised to [path]. *)
