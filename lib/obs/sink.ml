type 'a t = {
  mutable emitted : int;
  emit_fn : 'a -> unit;
  flush_fn : unit -> unit;
  close_fn : unit -> unit;
  mutable closed : bool;
}

let make ?(flush = ignore) ?(close = ignore) emit_fn =
  { emitted = 0; emit_fn; flush_fn = flush; close_fn = close; closed = false }

let emit t x =
  if not t.closed then begin
    t.emitted <- t.emitted + 1;
    t.emit_fn x
  end

let flush t = if not t.closed then t.flush_fn ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.close_fn ()
  end

let emitted t = t.emitted

let null () = make ignore

let of_fun ?flush ?close f = make ?flush ?close f

let tee a b =
  make
    ~flush:(fun () -> flush a; flush b)
    ~close:(fun () -> close a; close b)
    (fun x -> emit a x; emit b x)

let line_writer ~render oc x =
  output_string oc (render x);
  output_char oc '\n'

let channel ~render oc =
  make ~flush:(fun () -> Stdlib.flush oc) ~close:(fun () -> Stdlib.flush oc) (line_writer ~render oc)

let file ~render path =
  let oc = open_out path in
  make ~flush:(fun () -> Stdlib.flush oc) ~close:(fun () -> close_out oc) (line_writer ~render oc)

module Ring = struct
  type 'a ring = {
    cap : int;
    mutable buf : 'a array;
    mutable start : int;  (* index of oldest value *)
    mutable len : int;
    mutable pushed : int;
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Sink.Ring.create: capacity must be positive";
    { cap = capacity; buf = [||]; start = 0; len = 0; pushed = 0 }

  let push r x =
    if Array.length r.buf = 0 then r.buf <- Array.make r.cap x;
    if r.len < r.cap then begin
      r.buf.((r.start + r.len) mod r.cap) <- x;
      r.len <- r.len + 1
    end
    else begin
      r.buf.(r.start) <- x;
      r.start <- (r.start + 1) mod r.cap
    end;
    r.pushed <- r.pushed + 1

  let to_list r =
    let rec collect i acc =
      if i < 0 then acc else collect (i - 1) (r.buf.((r.start + i) mod r.cap) :: acc)
    in
    collect (r.len - 1) []

  let total r = r.pushed

  let length r = r.len

  let capacity r = r.cap

  let clear r =
    r.start <- 0;
    r.len <- 0

  let sink r = make (push r)
end
