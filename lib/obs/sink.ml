type 'a t = {
  mutable emitted : int;
  mutable dropped : int;
  emit_fn : 'a t -> 'a -> unit;
  flush_fn : unit -> unit;
  close_fn : unit -> unit;
  mutable closed : bool;
}

let make ?(flush = ignore) ?(close = ignore) emit_fn =
  {
    emitted = 0;
    dropped = 0;
    emit_fn = (fun _ x -> emit_fn x);
    flush_fn = flush;
    close_fn = close;
    closed = false;
  }

(* Internal: combinators that decide per-value whether to forward need to
   bump their own drop tally, so their emit body receives the sink. *)
let make_self ?(flush = ignore) ?(close = ignore) emit_fn =
  { emitted = 0; dropped = 0; emit_fn; flush_fn = flush; close_fn = close; closed = false }

let emit t x =
  if t.closed then
    (* Counting drop policy: a closed sink swallows the value, but never
       silently — the producer can audit [dropped] afterwards. *)
    t.dropped <- t.dropped + 1
  else begin
    t.emitted <- t.emitted + 1;
    t.emit_fn t x
  end

let flush t = if not t.closed then t.flush_fn ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.close_fn ()
  end

let emitted t = t.emitted

let dropped t = t.dropped

let null () = make ignore

let of_fun ?flush ?close f = make ?flush ?close f

let tee a b =
  make
    ~flush:(fun () -> flush a; flush b)
    ~close:(fun () -> close a; close b)
    (fun x -> emit a x; emit b x)

let sample ~every inner =
  if every <= 0 then invalid_arg "Sink.sample: every must be positive";
  let seen = ref 0 in
  make_self
    ~flush:(fun () -> flush inner)
    ~close:(fun () -> close inner)
    (fun self x ->
      let k = !seen in
      seen := k + 1;
      if k mod every = 0 then emit inner x else self.dropped <- self.dropped + 1)

let line_writer ~render oc x =
  output_string oc (render x);
  output_char oc '\n'

let channel ~render oc =
  make ~flush:(fun () -> Stdlib.flush oc) ~close:(fun () -> Stdlib.flush oc) (line_writer ~render oc)

let file ~render path =
  let oc = open_out path in
  make ~flush:(fun () -> Stdlib.flush oc) ~close:(fun () -> close_out oc) (line_writer ~render oc)

module Ring = struct
  type 'a ring = {
    cap : int;
    mutable buf : 'a array;
    mutable start : int;  (* index of oldest value *)
    mutable len : int;
    mutable pushed : int;
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Sink.Ring.create: capacity must be positive";
    { cap = capacity; buf = [||]; start = 0; len = 0; pushed = 0 }

  let push r x =
    if Array.length r.buf = 0 then r.buf <- Array.make r.cap x;
    if r.len < r.cap then begin
      r.buf.((r.start + r.len) mod r.cap) <- x;
      r.len <- r.len + 1
    end
    else begin
      r.buf.(r.start) <- x;
      r.start <- (r.start + 1) mod r.cap
    end;
    r.pushed <- r.pushed + 1

  let to_list r =
    let rec collect i acc =
      if i < 0 then acc else collect (i - 1) (r.buf.((r.start + i) mod r.cap) :: acc)
    in
    collect (r.len - 1) []

  let total r = r.pushed

  let length r = r.len

  let capacity r = r.cap

  let clear r =
    r.start <- 0;
    r.len <- 0

  let sink r =
    make_self (fun self x ->
        if r.len = r.cap then self.dropped <- self.dropped + 1;
        push r x)
end

module Reservoir = struct
  type 'a res = {
    cap : int;
    mutable buf : 'a array;
    mutable len : int;
    mutable pushed : int;
    mutable state : int64;  (* splitmix64, seeded — no global Random state *)
  }

  let create ~capacity ~seed =
    if capacity <= 0 then invalid_arg "Sink.Reservoir.create: capacity must be positive";
    { cap = capacity; buf = [||]; len = 0; pushed = 0; state = Int64.of_int seed }

  (* splitmix64 step — a tiny, well-mixed generator whose whole state is
     one int64, so sampling stays deterministic per seed and independent
     of any other randomness in the process. *)
  let next r =
    r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
    let z = r.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let rand_below r n =
    Int64.to_int (Int64.rem (Int64.logand (next r) Int64.max_int) (Int64.of_int n))

  (* Algorithm R: after [n] pushes every value has the same cap/n chance
     of being retained. Returns [true] when [x] was kept. *)
  let push r x =
    r.pushed <- r.pushed + 1;
    if Array.length r.buf = 0 then r.buf <- Array.make r.cap x;
    if r.len < r.cap then begin
      r.buf.(r.len) <- x;
      r.len <- r.len + 1;
      true
    end
    else begin
      let j = rand_below r r.pushed in
      if j < r.cap then begin
        r.buf.(j) <- x;
        true
      end
      else false
    end

  let to_list r = Array.to_list (Array.sub r.buf 0 r.len)

  let total r = r.pushed

  let length r = r.len

  let capacity r = r.cap

  let sink r =
    make_self (fun self x -> if not (push r x) then self.dropped <- self.dropped + 1)
end
