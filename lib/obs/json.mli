(** Minimal JSON tree, printer and parser.

    The observability layer emits machine-readable artefacts (Chrome-trace
    files, JSONL event streams, metrics documents) and the test suite must
    re-read them; the toolchain here has no JSON library baked in, so this
    module provides the small dependency-free subset we need: a value tree,
    a compact printer with correct string escaping, and a strict
    recursive-descent parser used by round-trip tests and the CLI smoke
    check. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Strings are escaped per RFC 8259;
    non-finite floats render as [null] (JSON has no representation for
    them). *)

val to_channel : out_channel -> t -> unit

val write_file : path:string -> t -> unit
(** Write [to_string] plus a trailing newline to [path] (truncates). *)

val parse : string -> (t, string) result
(** Strict parse of one JSON document; trailing non-whitespace is an
    error.  Numbers with [.], [e] or [E] become [Float], the rest [Int].
    [\uXXXX] escapes outside ASCII decode to UTF-8. *)

val member : string -> t -> t option
(** Field lookup ([None] for absent field or non-object). *)

val to_list : t -> t list
(** [[]] for non-arrays. *)

val str : t -> string option

val int : t -> int option
(** Accepts [Int]; floats are not silently truncated. *)
