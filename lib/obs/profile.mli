(** Phase profiler: scoped wall-clock timers with self-time attribution.

    Call sites wrap interesting phases ([engine.dispatch], [ckpt.record],
    [recovery.splice], ...) in {!time}; when profiling is enabled the
    elapsed wall time is charged to the named phase, and time spent in
    nested {!time} scopes is subtracted to give exclusive "self" time.
    State is sharded per domain (DLS), so instrumented hot paths never
    contend on a lock; when disabled — the default — {!time} is a single
    flag test plus the cost of the wrapped call.

    The aggregate is exported as a [recflow.profile/1] JSON document
    ({!to_json}) or an ASCII self-time table ({!pp_report}); the CLI
    surfaces both behind [--profile]. *)

val set_enabled : bool -> unit
(** Switch profiling on/off.  Flip it before the measured run, not during:
    the flag is a plain (unsynchronised) toggle read by every domain. *)

val is_enabled : unit -> bool

val reset : unit -> unit
(** Zero all tallies on every domain (keeps profiling enabled/disabled as
    it was).  Call between measured runs, while no run is in flight. *)

val time : string -> (unit -> 'a) -> 'a
(** [time phase f] runs [f ()], charging its wall time to [phase] on the
    calling domain.  Exceptions propagate; the span still closes.  When
    profiling is disabled this is just [f ()]. *)

type probe
(** A pre-resolved phase handle for call sites hot enough that the
    per-span string hash and tally lookup of {!time} would show up
    (checkpoint record/discharge run per packet).  The handle caches the
    tally per domain; spans through it are indistinguishable from
    {!time} spans in snapshots and reports. *)

val probe : string -> probe
(** Create once (at module init), use from any domain. *)

val time_probe : probe -> (unit -> 'a) -> 'a
(** Like {!time}, through a {!probe}: two clock reads and a frame push
    per span, no name lookup.  When disabled this is just [f ()]. *)

type entry = { name : string; count : int; total_s : float; self_s : float }
(** [total_s] is inclusive wall time; [self_s] excludes time spent in
    nested profiled scopes. *)

val snapshot : unit -> entry list
(** Tallies merged across all domains, sorted by phase name.  Take it
    after the measured run has finished — merging does not synchronise
    with in-flight spans. *)

val schema : string
(** ["recflow.profile/1"]. *)

val to_json : ?wall_s:float -> ?meta:(string * Json.t) list -> unit -> Json.t
(** The [recflow.profile/1] document: schema tag, optional wall-clock and
    meta block, and one object per phase with [count] / [total_s] /
    [self_s]. *)

val pp_report : Format.formatter -> unit -> unit
(** ASCII table, phases sorted by self time descending. *)
