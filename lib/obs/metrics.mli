(** Structured metrics documents for a finished run.

    One JSON object per run, schema ["recflow.metrics/1"]:

    {v
    { "schema":   "recflow.metrics/1",
      "meta":     { nodes, topology, policy, recovery, ckpt_mode, seed,
                    detect_delay, ..., workload?, size? },
      "outcome":  { answer, answer_time, sim_time, events, error,
                    total_work, total_waste, correct? },
      "counters": { "msg.sent": 1234, ... },
      "trace":    { "logged": n, "retained": m },
      "latency":  { "net.rtt": { count, invalid, mean, min,
                                 p50, p90, p99, p999, max }, ... },
      "episodes": [ per-failure span, see {!Episode.to_json} ],
      "episode_summary": { detection/recovery latency summaries,
                           redone work, §4.1 case histogram } }
    v}

    The [meta] block records every run-defining configuration knob
    ({!Recflow_machine.Config.metadata}) so a benchmark trajectory is
    reproducible from the artefact alone. *)

module Cluster = Recflow_machine.Cluster
module Config = Recflow_machine.Config

val meta_json :
  ?workload:string -> ?size:string -> Config.t -> Recflow_obs_core.Json.t
(** Just the [meta] object. *)

val hdr_json : Recflow_stats.Hdr.t -> Recflow_obs_core.Json.t
(** Percentile block for one duration histogram: count/invalid always,
    mean/min/p50/p90/p99/p999/max when non-empty.  Shared by the metrics
    document and the bench harness. *)

val run_json :
  ?workload:string ->
  ?size:string ->
  ?expected:Recflow_lang.Value.t ->
  cluster:Cluster.t ->
  outcome:Cluster.outcome ->
  unit ->
  Recflow_obs_core.Json.t
(** The full document.  [expected] adds an ["correct"] verdict against the
    serial reference answer. *)

val write : path:string -> Recflow_obs_core.Json.t -> unit
