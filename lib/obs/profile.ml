(* Phase profiler: scoped wall-clock timers with self-time attribution.

   State is sharded per domain through DLS — a domain only ever touches its
   own tally table and span stack, so instrumented hot paths (engine
   dispatch, checkpoint record, recovery splice) take no lock.  The one
   mutex below guards only the registry of per-domain states and is hit
   once per domain lifetime, at first use.  When disabled (the default)
   [time] is a single flag test. *)

type tally = { mutable count : int; mutable total : float; mutable self : float }

type frame = { tally : tally; start : float; mutable child : float }

type dstate = { tallies : (string, tally) Hashtbl.t; mutable stack : frame list }

let enabled = ref false

let registry : dstate list ref = ref []

let registry_mutex = Mutex.create ()

let dkey =
  Domain.DLS.new_key (fun () ->
      let s = { tallies = Hashtbl.create 16; stack = [] } in
      Mutex.lock registry_mutex;
      registry := s :: !registry;
      Mutex.unlock registry_mutex;
      s)

let set_enabled b = enabled := b

let is_enabled () = !enabled

(* Zero tallies in place rather than [Hashtbl.reset]: {!probe} handles
   cache the tally object per domain, so its identity must survive a
   reset. *)
let reset () =
  Mutex.lock registry_mutex;
  List.iter
    (fun s ->
      Hashtbl.iter
        (fun _ (t : tally) ->
          t.count <- 0;
          t.total <- 0.0;
          t.self <- 0.0)
        s.tallies;
      s.stack <- [])
    !registry;
  Mutex.unlock registry_mutex

let tally_of s name =
  match Hashtbl.find_opt s.tallies name with
  | Some t -> t
  | None ->
    let t = { count = 0; total = 0.0; self = 0.0 } in
    Hashtbl.add s.tallies name t;
    t

let span s t f =
  let fr = { tally = t; start = Unix.gettimeofday (); child = 0.0 } in
  s.stack <- fr :: s.stack;
  let finish () =
    let dt = Unix.gettimeofday () -. fr.start in
    (match s.stack with _ :: rest -> s.stack <- rest | [] -> ());
    fr.tally.count <- fr.tally.count + 1;
    fr.tally.total <- fr.tally.total +. dt;
    fr.tally.self <- fr.tally.self +. (dt -. fr.child);
    match s.stack with parent :: _ -> parent.child <- parent.child +. dt | [] -> ()
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let time name f =
  if not !enabled then f ()
  else begin
    let s = Domain.DLS.get dkey in
    span s (tally_of s name) f
  end

(* A probe caches its tally per domain so the hot path skips the string
   hash and [find_opt] of {!time} — each span is then just the two clock
   reads plus the frame push.  The cached tally lives in the domain's
   ordinary tally table (and {!reset} zeroes tallies in place), so
   snapshot/reset see probe spans exactly like named ones. *)
type nonrec probe = tally Domain.DLS.key

let probe name =
  Domain.DLS.new_key (fun () -> tally_of (Domain.DLS.get dkey) name)

let time_probe p f =
  if not !enabled then f ()
  else begin
    let s = Domain.DLS.get dkey in
    span s (Domain.DLS.get p) f
  end

type entry = { name : string; count : int; total_s : float; self_s : float }

let snapshot () =
  let merged : (string, tally) Hashtbl.t = Hashtbl.create 16 in
  Mutex.lock registry_mutex;
  let states = !registry in
  Mutex.unlock registry_mutex;
  List.iter
    (fun s ->
      Hashtbl.iter
        (fun name (t : tally) ->
          let m =
            match Hashtbl.find_opt merged name with
            | Some m -> m
            | None ->
              let m = { count = 0; total = 0.0; self = 0.0 } in
              Hashtbl.add merged name m;
              m
          in
          m.count <- m.count + t.count;
          m.total <- m.total +. t.total;
          m.self <- m.self +. t.self)
        s.tallies)
    states;
  Hashtbl.fold
    (fun name (t : tally) acc ->
      (* [reset] zeroes tallies in place (probe handles cache them), so a
         phase not entered since the last reset shows up here as an
         all-zero tally — omit it. *)
      if t.count = 0 then acc
      else { name; count = t.count; total_s = t.total; self_s = t.self } :: acc)
    merged []
  |> List.sort (fun a b -> String.compare a.name b.name)

let schema = "recflow.profile/1"

let to_json ?wall_s ?(meta = []) () =
  let phases =
    List.map
      (fun e ->
        ( e.name,
          Json.Obj
            [
              ("count", Json.Int e.count);
              ("total_s", Json.Float e.total_s);
              ("self_s", Json.Float e.self_s);
            ] ))
      (snapshot ())
  in
  Json.Obj
    (("schema", Json.Str schema)
     :: (match wall_s with Some w -> [ ("wall_s", Json.Float w) ] | None -> [])
    @ (match meta with [] -> [] | m -> [ ("meta", Json.Obj m) ])
    @ [ ("phases", Json.Obj phases) ])

let pp_report ppf () =
  let entries = snapshot () in
  if entries = [] then Format.fprintf ppf "profile: no phases recorded@."
  else begin
    let entries = List.sort (fun a b -> compare b.self_s a.self_s) entries in
    let total_self = List.fold_left (fun acc e -> acc +. e.self_s) 0.0 entries in
    Format.fprintf ppf "== phase profile ==@.";
    Format.fprintf ppf "%-28s %10s %12s %12s %7s@." "phase" "count" "total(ms)" "self(ms)"
      "self%";
    List.iter
      (fun e ->
        let pct = if total_self > 0.0 then 100.0 *. e.self_s /. total_self else 0.0 in
        Format.fprintf ppf "%-28s %10d %12.2f %12.2f %6.1f%%@." e.name e.count
          (1000.0 *. e.total_s) (1000.0 *. e.self_s) pct)
      entries
  end
