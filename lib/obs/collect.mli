(** Sharded observability collector: per-pool-slot counters + histograms.

    Replaces the "one shared [Counter.set] behind a mutex" pattern for
    code that records events from inside pool fan-outs (obs hooks, sweep
    aggregation): writes go to the shard owned by the calling domain's
    {!Recflow_parallel.Pool.slot}, so the per-event path takes no lock,
    and reads merge the shards deterministically in slot order after the
    batch barrier.  Because merging is a commutative pointwise sum and
    [Counter.to_alist]/{!hdrs} sort by name, the aggregate is independent
    of which domain ran which element — sweeps stay byte-identical at any
    [--jobs]. *)

type t

val create : ?precision:int -> ?slots:int -> unit -> t
(** [slots] is the initial shard width and defaults to
    {!Recflow_parallel.Pool.slot_limit} (every slot allocated so far); the
    collector widens itself automatically when later-created pools allocate
    higher slot ids, so creation order no longer matters.  [precision] is
    forwarded to {!Recflow_stats.Hdr.create}.
    @raise Invalid_argument if [slots < 1]. *)

val slots : t -> int
(** Current shard width (grows on demand; only a capacity hint). *)

val incr : t -> string -> unit
(** Bump a named counter in the calling domain's shard (lock-free on the
    hot path; a slot seen for the first time widens the shard array under
    a lock, once). *)

val add : t -> string -> int -> unit

val record : t -> string -> int -> unit
(** Record a duration into the named {!Recflow_stats.Hdr} histogram of the
    calling domain's shard (lock-free, creates the histogram lazily). *)

val counters : t -> Recflow_stats.Counter.set
(** Fresh pointwise sum of all shards, merged in slot order.  Only sound
    after the writers' batch has settled (e.g. after [Pool.map] returns). *)

val hdrs : t -> (string * Recflow_stats.Hdr.t) list
(** All histograms merged across shards, sorted by name; same settling
    caveat as {!counters}. *)

val hdr : t -> string -> Recflow_stats.Hdr.t option
(** One merged histogram by name. *)

val reset : t -> unit
