module Journal = Recflow_machine.Journal
module Stamp = Recflow_recovery.Stamp
module Splice_case = Recflow_recovery.Splice_case
module Summary = Recflow_stats.Summary
module Counter = Recflow_stats.Counter
module Json = Recflow_obs_core.Json

type t = {
  ordinal : int;
  failed_proc : int;
  fail_time : int;
  window_end : int option;
  detection_latency : int option;
  recovery_latency : int option;
  quiesce_time : int option;
  lost_tasks : int;
  lost_work : int;
  reissued : int;
  inherited : int;
  relayed : int;
  salvaged_results : int;
  orphans_dropped : int;
  aborted : int;
  duplicates_ignored : int;
  redone_tasks : int;
  redone_work : int;
  cases : (Splice_case.case * int) list;
}

let in_window ~fail_time ~window_end time =
  time >= fail_time && match window_end with Some w -> time < w | None -> true

(* §4.1 classification for every child of every task that died with the
   failed processor. *)
let case_histogram journal ~fail_time ~dead_stamps =
  let first_time stamp pred =
    List.find_map
      (fun (e : Journal.entry) -> if pred e.Journal.event e.Journal.time then Some e.Journal.time else None)
      (Journal.for_stamp journal stamp)
  in
  let orig_task stamp =
    (* the pre-failure activation this episode lost *)
    List.find_map
      (fun (e : Journal.entry) ->
        match e.Journal.event with
        | Journal.Activated { task; _ } when e.Journal.time < fail_time -> Some task
        | _ -> None)
      (Journal.for_stamp journal stamp)
  in
  let all_stamps = Journal.stamps journal in
  let children p =
    List.filter
      (fun s -> match Stamp.parent s with Some q -> Stamp.equal p q | None -> false)
      all_stamps
  in
  let tally = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let p_orig = orig_task p in
      let twin_time want orig =
        first_time p (fun ev time ->
            match (ev, want) with
            | Journal.Activated { task; _ }, `Invoked -> time >= fail_time && Some task <> orig
            | Journal.Completed { task; _ }, `Completed -> time >= fail_time && Some task <> orig
            | _ -> false)
      in
      let p'_invoked = twin_time `Invoked p_orig in
      let p'_completed = twin_time `Completed p_orig in
      List.iter
        (fun c ->
          let c_orig =
            List.find_map
              (fun (e : Journal.entry) ->
                match e.Journal.event with
                | Journal.Spawned { task; _ } when e.Journal.time < fail_time -> Some task
                | _ -> None)
              (Journal.for_stamp journal c)
          in
          let orig_time want =
            match c_orig with
            | None -> None
            | Some orig ->
              first_time c (fun ev _ ->
                  match (ev, want) with
                  | Journal.Activated { task; _ }, `Invoked -> task = orig
                  | Journal.Completed { task; _ }, `Completed -> task = orig
                  | _ -> false)
          in
          let clone_time want =
            first_time c (fun ev time ->
                match (ev, want) with
                | Journal.Activated { task; _ }, `Invoked -> time >= fail_time && Some task <> c_orig
                | Journal.Completed { task; _ }, `Completed -> time >= fail_time && Some task <> c_orig
                | _ -> false)
          in
          let tl =
            {
              Splice_case.c_invoked = orig_time `Invoked;
              c_completed = orig_time `Completed;
              p_failed = fail_time;
              p'_invoked;
              p'_completed;
              c'_invoked = clone_time `Invoked;
              c'_completed = clone_time `Completed;
            }
          in
          let case = Splice_case.classify tl in
          Hashtbl.replace tally case (1 + Option.value ~default:0 (Hashtbl.find_opt tally case)))
        (children p))
    dead_stamps;
  List.filter_map
    (fun case -> Hashtbl.find_opt tally case |> Option.map (fun n -> (case, n)))
    Splice_case.all

let analyze journal =
  let entries = Journal.entries journal in
  let failures =
    List.filter_map
      (fun (e : Journal.entry) ->
        match e.Journal.event with
        | Journal.Failure { proc } -> Some (e.Journal.time, proc)
        | _ -> None)
      entries
  in
  List.mapi
    (fun i (fail_time, failed_proc) ->
      let window_end =
        List.nth_opt failures (i + 1) |> Option.map (fun (time, _) -> time)
      in
      let in_window time = in_window ~fail_time ~window_end time in
      (* Exact busy ticks per task id, straight from the journal: every
         task's execution ends in exactly one of Completed / Aborted /
         Lost, each of which records the work consumed. *)
      let work_of : (int, int) Hashtbl.t = Hashtbl.create 256 in
      (* stamp digits -> first pre-failure activated task id *)
      let pre_activated : (int list, int) Hashtbl.t = Hashtbl.create 256 in
      List.iter
        (fun (e : Journal.entry) ->
          match e.Journal.event with
          | Journal.Completed { task; work; _ }
          | Journal.Aborted { task; work; _ }
          | Journal.Lost { task; work; _ } ->
            Hashtbl.replace work_of task work
          | Journal.Activated { task; _ } when e.Journal.time < fail_time ->
            let key = Stamp.digits e.Journal.stamp in
            if not (Hashtbl.mem pre_activated key) then Hashtbl.add pre_activated key task
          | _ -> ())
        entries;
      (* The tasks the failure destroyed, as journalled at kill time. *)
      let dead =
        List.filter_map
          (fun (e : Journal.entry) ->
            match e.Journal.event with
            | Journal.Lost { task; proc; work } when proc = failed_proc && in_window e.Journal.time
              ->
              Some (task, e.Journal.stamp, work)
            | _ -> None)
          entries
      in
      let dead_stamps = List.map (fun (_, stamp, _) -> stamp) dead in
      let lost_work = List.fold_left (fun acc (_, _, w) -> acc + w) 0 dead in
      let dead_stamp_keys =
        List.fold_left
          (fun set s -> Stamp.digits s :: set)
          [] dead_stamps
      in
      let parent_died stamp =
        match Stamp.parent stamp with
        | Some p -> List.mem (Stamp.digits p) dead_stamp_keys
        | None -> false
      in
      let spawned_before task =
        List.exists
          (fun (e : Journal.entry) ->
            e.Journal.time < fail_time
            && match e.Journal.event with Journal.Spawned { task = s; _ } -> s = task | _ -> false)
          entries
      in
      (* Single pass over the window for counts, detection and quiesce. *)
      let reissued = ref 0 and inherited = ref 0 and relayed = ref 0 in
      let orphans_dropped = ref 0 and aborted = ref 0 and duplicates = ref 0 in
      let salvaged = ref 0 in
      let first_respawn = ref None and quiesce = ref None in
      let redone = Hashtbl.create 64 in
      let touch_quiesce time =
        match !quiesce with Some q when q >= time -> () | _ -> quiesce := Some time
      in
      List.iter
        (fun (e : Journal.entry) ->
          if in_window e.Journal.time then begin
            let recovery_event =
              match e.Journal.event with
              | Journal.Respawned _ ->
                incr reissued;
                if !first_respawn = None then first_respawn := Some e.Journal.time;
                true
              | Journal.Inherited _ -> incr inherited; true
              | Journal.Relayed _ -> incr relayed; true
              | Journal.Relay_dropped _ -> true
              | Journal.Orphan_dropped _ -> incr orphans_dropped; true
              | Journal.Duplicate_ignored _ -> incr duplicates; true
              | Journal.Aborted _ -> incr aborted; true
              | Journal.Result_accepted { task } ->
                if spawned_before task && parent_died e.Journal.stamp then begin
                  incr salvaged;
                  true
                end
                else false
              | Journal.Activated { task; _ } -> (
                (* re-execution of a stamp the failure wiped out: charge the
                   original execution's recorded busy ticks as redone work *)
                match Hashtbl.find_opt pre_activated (Stamp.digits e.Journal.stamp) with
                | Some orig when orig <> task ->
                  if not (Hashtbl.mem redone (Stamp.digits e.Journal.stamp)) then
                    Hashtbl.add redone (Stamp.digits e.Journal.stamp)
                      (Option.value ~default:0 (Hashtbl.find_opt work_of orig));
                  true
                | _ -> false)
              | _ -> false
            in
            if recovery_event then touch_quiesce e.Journal.time
          end)
        entries;
      let redone_tasks = Hashtbl.length redone in
      let redone_work = Hashtbl.fold (fun _ w acc -> acc + w) redone 0 in
      let cases = case_histogram journal ~fail_time ~dead_stamps in
      {
        ordinal = i + 1;
        failed_proc;
        fail_time;
        window_end;
        detection_latency = Option.map (fun time -> time - fail_time) !first_respawn;
        recovery_latency = Option.map (fun time -> time - fail_time) !quiesce;
        quiesce_time = !quiesce;
        lost_tasks = List.length dead;
        lost_work;
        reissued = !reissued;
        inherited = !inherited;
        relayed = !relayed;
        salvaged_results = !salvaged;
        orphans_dropped = !orphans_dropped;
        aborted = !aborted;
        duplicates_ignored = !duplicates;
        redone_tasks;
        redone_work;
        cases;
      })
    failures

type aggregate = {
  episodes : int;
  detection : Summary.t;
  recovery : Summary.t;
  redone_work_summary : Summary.t;
  total_reissued : int;
  total_salvaged : int;
  total_redone_work : int;
  case_counts : Counter.set;
}

let aggregate eps =
  let detection = Summary.create () in
  let recovery = Summary.create () in
  let redone_work_summary = Summary.create () in
  let case_counts = Counter.create_set () in
  let total_reissued = ref 0 and total_salvaged = ref 0 and total_redone = ref 0 in
  List.iter
    (fun e ->
      Option.iter (Summary.observe_int detection) e.detection_latency;
      Option.iter (Summary.observe_int recovery) e.recovery_latency;
      Summary.observe_int redone_work_summary e.redone_work;
      total_reissued := !total_reissued + e.reissued;
      total_salvaged := !total_salvaged + e.salvaged_results;
      total_redone := !total_redone + e.redone_work;
      List.iter
        (fun (case, n) ->
          Counter.add case_counts (Printf.sprintf "case%d" (Splice_case.case_number case)) n)
        e.cases)
    eps;
  {
    episodes = List.length eps;
    detection;
    recovery;
    redone_work_summary;
    total_reissued = !total_reissued;
    total_salvaged = !total_salvaged;
    total_redone_work = !total_redone;
    case_counts;
  }

let summary_to_json s =
  if Summary.count s = 0 then Json.Obj [ ("n", Json.Int 0) ]
  else
    Json.Obj
      [
        ("n", Json.Int (Summary.count s));
        ("mean", Json.Float (Summary.mean s));
        ("min", Json.Float (Summary.min_value s));
        ("p50", Json.Float (Summary.median s));
        ("p95", Json.Float (Summary.percentile s 95.0));
        ("max", Json.Float (Summary.max_value s));
      ]

let opt_int = function Some n -> Json.Int n | None -> Json.Null

let cases_to_json cases =
  Json.Obj
    (List.map
       (fun (case, n) -> (Printf.sprintf "case%d" (Splice_case.case_number case), Json.Int n))
       cases)

let to_json e =
  Json.Obj
    [
      ("ordinal", Json.Int e.ordinal);
      ("failed_proc", Json.Int e.failed_proc);
      ("fail_time", Json.Int e.fail_time);
      ("window_end", opt_int e.window_end);
      ("detection_latency", opt_int e.detection_latency);
      ("recovery_latency", opt_int e.recovery_latency);
      ("quiesce_time", opt_int e.quiesce_time);
      ("lost_tasks", Json.Int e.lost_tasks);
      ("lost_work", Json.Int e.lost_work);
      ("reissued", Json.Int e.reissued);
      ("inherited", Json.Int e.inherited);
      ("relayed", Json.Int e.relayed);
      ("salvaged_results", Json.Int e.salvaged_results);
      ("orphans_dropped", Json.Int e.orphans_dropped);
      ("aborted", Json.Int e.aborted);
      ("duplicates_ignored", Json.Int e.duplicates_ignored);
      ("redone_tasks", Json.Int e.redone_tasks);
      ("redone_work", Json.Int e.redone_work);
      ("cases", cases_to_json e.cases);
    ]

let aggregate_to_json a =
  Json.Obj
    [
      ("episodes", Json.Int a.episodes);
      ("detection_latency", summary_to_json a.detection);
      ("recovery_latency", summary_to_json a.recovery);
      ("redone_work", summary_to_json a.redone_work_summary);
      ("total_reissued", Json.Int a.total_reissued);
      ("total_salvaged", Json.Int a.total_salvaged);
      ("total_redone_work", Json.Int a.total_redone_work);
      ( "cases",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Int v)) (Counter.to_alist a.case_counts)) );
    ]

let pp ppf e =
  let opt = function Some n -> string_of_int n | None -> "-" in
  Format.fprintf ppf
    "#%d P%d fails t=%d: lost=%d (%d ticks) detect=%s recover=%s reissued=%d salvaged=%d \
     redone=%d ticks%s"
    e.ordinal e.failed_proc e.fail_time e.lost_tasks e.lost_work (opt e.detection_latency)
    (opt e.recovery_latency) e.reissued e.salvaged_results e.redone_work
    (match e.cases with
    | [] -> ""
    | cases ->
      " cases["
      ^ String.concat " "
          (List.map
             (fun (c, n) -> Printf.sprintf "%d:%d" (Splice_case.case_number c) n)
             cases)
      ^ "]")
