(* Sharded observability collector: one counter set + histogram registry
   per pool execution slot.

   The write path indexes by [Pool.slot ()] — each slot has exactly one
   writing domain (pools allocate worker slots from a process-wide
   counter, so coexisting pools never alias), which means recording an
   event takes no lock and shares no cache line with other workers.
   Because slots are allocated for the life of the process, the shard
   array grows on demand: growth copies the shard *pointers* into a wider
   array, so a writer holding a stale array still lands its updates in the
   same shard records the merge will read.  Reads (merge) happen after the
   pool batch has settled: Pool.map's completion barrier gives the
   happens-before edge, and merging over commutative pointwise sums makes
   the aggregate independent of which run landed on which slot — the
   property that keeps experiment sweeps byte-identical at any --jobs. *)

module Counter = Recflow_stats.Counter
module Hdr = Recflow_stats.Hdr
module Pool = Recflow_parallel.Pool

type shard = { counters : Counter.set; hdrs : (string, Hdr.t) Hashtbl.t }

type t = { mutable shards : shard array; precision : int; grow : Mutex.t }

let fresh_shard () = { counters = Counter.create_set (); hdrs = Hashtbl.create 8 }

let create ?(precision = 5) ?slots () =
  let slots = match slots with Some s -> s | None -> max (Pool.slot_limit ()) 1 in
  if slots < 1 then invalid_arg "Collect.create: slots must be >= 1";
  { shards = Array.init slots (fun _ -> fresh_shard ()); precision; grow = Mutex.create () }

let slots t = Array.length t.shards

(* Slot [s] was allocated after this collector was sized: widen under the
   grow lock (rare — once per new slot), republish, and keep every old
   shard record shared so concurrent writers through a stale array are
   still counted. *)
let rec grow_to t s =
  Mutex.lock t.grow;
  let a = t.shards in
  let len = Array.length a in
  if s >= len then begin
    let n = max (s + 1) (2 * len) in
    t.shards <- Array.init n (fun i -> if i < len then a.(i) else fresh_shard ())
  end;
  Mutex.unlock t.grow;
  shard t

and shard t =
  let s = Pool.slot () in
  let a = t.shards in
  if s < Array.length a then a.(s) else grow_to t s

let incr t name = Counter.incr (shard t).counters name

let add t name n = Counter.add (shard t).counters name n

let record t name v =
  let sh = shard t in
  let h =
    match Hashtbl.find_opt sh.hdrs name with
    | Some h -> h
    | None ->
      let h = Hdr.create ~precision:t.precision () in
      Hashtbl.add sh.hdrs name h;
      h
  in
  Hdr.record h v

let counters t =
  Array.fold_left (fun acc sh -> Counter.merge acc sh.counters) (Counter.create_set ()) t.shards

let hdr_names t =
  let module S = Set.Make (String) in
  Array.fold_left
    (fun acc sh -> Hashtbl.fold (fun name _ acc -> S.add name acc) sh.hdrs acc)
    S.empty t.shards
  |> S.elements

let hdrs t =
  List.map
    (fun name ->
      let merged =
        Array.fold_left
          (fun acc sh ->
            match Hashtbl.find_opt sh.hdrs name with
            | Some h -> Hdr.merge acc h
            | None -> acc)
          (Hdr.create ~precision:t.precision ())
          t.shards
      in
      (name, merged))
    (hdr_names t)

let hdr t name = List.assoc_opt name (hdrs t)

let reset t =
  Array.iter
    (fun sh ->
      Counter.reset sh.counters;
      Hashtbl.reset sh.hdrs)
    t.shards
