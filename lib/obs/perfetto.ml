module Journal = Recflow_machine.Journal
module Timeline = Recflow_machine.Timeline
module Stamp = Recflow_recovery.Stamp
module Json = Recflow_obs_core.Json
module Sink = Recflow_obs_core.Sink

(* pid space: one "process" per simulated processor, plus one synthetic
   process for cluster-level events that have no processor (result
   splicing, duplicate suppression, orphan bookkeeping). *)
let cluster_pid ~nodes = nodes

let meta ~pid ~name ~sort_index =
  [
    Json.Obj
      [
        ("ph", Json.Str "M");
        ("pid", Json.Int pid);
        ("ts", Json.Int 0);
        ("name", Json.Str "process_name");
        ("args", Json.Obj [ ("name", Json.Str name) ]);
      ];
    Json.Obj
      [
        ("ph", Json.Str "M");
        ("pid", Json.Int pid);
        ("ts", Json.Int 0);
        ("name", Json.Str "process_sort_index");
        ("args", Json.Obj [ ("sort_index", Json.Int sort_index) ]);
      ];
  ]

let slice ~pid ~tid ~ts ~dur ~name ~stamp ~task ~outcome =
  Json.Obj
    [
      ("ph", Json.Str "X");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("ts", Json.Int ts);
      ("dur", Json.Int (max 0 dur));
      ("name", Json.Str name);
      ("cat", Json.Str "task");
      ( "args",
        Json.Obj
          [
            ("task", Json.Int task);
            ("stamp", Json.Str (Stamp.to_string stamp));
            ("outcome", Json.Str outcome);
          ] );
    ]

let instant ?(scope = "t") ~pid ~ts ~name ~cat args =
  Json.Obj
    [
      ("ph", Json.Str "i");
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("ts", Json.Int ts);
      ("s", Json.Str scope);
      ("name", Json.Str name);
      ("cat", Json.Str cat);
      ("args", Json.Obj args);
    ]

let counter ~pid ~ts ~value =
  Json.Obj
    [
      ("ph", Json.Str "C");
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("ts", Json.Int ts);
      ("name", Json.Str "occupancy");
      ("args", Json.Obj [ ("live", Json.Int (max 0 value)) ]);
    ]

type open_slice = { proc : int; lane : int; start : int; stamp : Stamp.t }

let header_events ~nodes =
  List.concat
    (List.init nodes (fun p -> meta ~pid:p ~name:(Printf.sprintf "P%d" p) ~sort_index:p)
    @ [ meta ~pid:(cluster_pid ~nodes) ~name:"cluster" ~sort_index:nodes ])

module Stream = struct
  (* Incremental journal→Chrome-trace conversion.  The only retained state
     is the lane allocator and the table of currently-open slices — both
     bounded by the peak number of concurrently live tasks, never by the
     length of the run — so a million-event journal streams through in
     constant memory.  (The post-hoc [events] below reuses this machinery
     with a list sink, adding the occupancy track that genuinely needs the
     whole journal.) *)
  type t = {
    nodes : int;
    sink : Json.t Sink.t;
    free_lanes : int list array;
    next_lane : int array;
    opens : (int, open_slice) Hashtbl.t;
    mutable last_time : int;
    mutable finished : bool;
  }

  let create ~nodes ~sink =
    let t =
      {
        nodes;
        sink;
        free_lanes = Array.make (max 1 nodes) [];
        next_lane = Array.make (max 1 nodes) 0;
        opens = Hashtbl.create 256;
        last_time = 0;
        finished = false;
      }
    in
    List.iter (Sink.emit sink) (header_events ~nodes);
    t

  let open_slices t = Hashtbl.length t.opens

  let claim t proc =
    if proc < 0 || proc >= t.nodes then 0
    else
      match t.free_lanes.(proc) with
      | lane :: rest ->
        t.free_lanes.(proc) <- rest;
        lane
      | [] ->
        let lane = t.next_lane.(proc) in
        t.next_lane.(proc) <- lane + 1;
        lane

  let release t proc lane =
    if proc >= 0 && proc < t.nodes then
      t.free_lanes.(proc) <- List.sort compare (lane :: t.free_lanes.(proc))

  let close_slice t ~task ~at ~outcome =
    match Hashtbl.find_opt t.opens task with
    | None -> ()
    | Some s ->
      Hashtbl.remove t.opens task;
      release t s.proc s.lane;
      Sink.emit t.sink
        (slice ~pid:s.proc ~tid:s.lane ~ts:s.start ~dur:(at - s.start)
           ~name:(Printf.sprintf "t%d %s" task (Stamp.to_string s.stamp))
           ~stamp:s.stamp ~task ~outcome)

  let stamp_args stamp rest = ("stamp", Json.Str (Stamp.to_string stamp)) :: rest

  let feed t (e : Journal.entry) =
    let nodes = t.nodes in
    let push ev = Sink.emit t.sink ev in
    let ts = e.Journal.time in
    t.last_time <- max t.last_time ts;
    let stamp = e.Journal.stamp in
    match e.Journal.event with
    | Journal.Activated { task; proc } ->
      let lane = claim t proc in
      Hashtbl.replace t.opens task { proc; lane; start = ts; stamp }
    | Journal.Completed { task; _ } -> close_slice t ~task ~at:ts ~outcome:"completed"
    | Journal.Aborted { task; proc; _ } ->
      (* an abort may target a task that never activated here; record the
         instant either way *)
      close_slice t ~task ~at:ts ~outcome:"aborted";
      push
        (instant ~pid:(if proc >= 0 && proc < nodes then proc else cluster_pid ~nodes)
           ~ts ~name:"abort" ~cat:"recovery"
           (stamp_args stamp [ ("task", Json.Int task) ]))
    | Journal.Lost { task; proc; work } ->
      close_slice t ~task ~at:ts ~outcome:"killed";
      push
        (instant ~pid:(if proc >= 0 && proc < nodes then proc else cluster_pid ~nodes)
           ~ts ~name:"lost" ~cat:"failure"
           (stamp_args stamp [ ("task", Json.Int task); ("work", Json.Int work) ]))
    | Journal.Failure { proc } ->
      (* [Lost] entries have already closed resident slices; sweep any
         stragglers so nothing survives its processor *)
      let victims =
        Hashtbl.fold (fun task s acc -> if s.proc = proc then task :: acc else acc) t.opens []
      in
      List.iter (fun task -> close_slice t ~task ~at:ts ~outcome:"killed") victims;
      push (instant ~scope:"p" ~pid:proc ~ts ~name:"failure" ~cat:"failure" [])
    | Journal.Spawned { task; dest; replica } ->
      let args = stamp_args stamp [ ("task", Json.Int task) ] in
      let args = if replica > 0 then ("replica", Json.Int replica) :: args else args in
      push
        (instant ~pid:(if dest >= 0 && dest < nodes then dest else cluster_pid ~nodes)
           ~ts ~name:"spawn" ~cat:"lifecycle" args)
    | Journal.Respawned { task; dest; reason } ->
      push
        (instant ~pid:(if dest >= 0 && dest < nodes then dest else cluster_pid ~nodes)
           ~ts ~name:"reissue" ~cat:"recovery"
           (stamp_args stamp [ ("task", Json.Int task); ("reason", Json.Str reason) ]))
    | Journal.Inherited { orphan_task; proc } ->
      push
        (instant ~pid:(if proc >= 0 && proc < nodes then proc else cluster_pid ~nodes)
           ~ts ~name:"inherit" ~cat:"recovery"
           (stamp_args stamp [ ("orphan_task", Json.Int orphan_task) ]))
    | Journal.Relayed { via } ->
      push
        (instant ~pid:(if via >= 0 && via < nodes then via else cluster_pid ~nodes)
           ~ts ~name:"relay" ~cat:"recovery" (stamp_args stamp []))
    | Journal.Relay_dropped { at; reason } ->
      push
        (instant ~pid:(if at >= 0 && at < nodes then at else cluster_pid ~nodes)
           ~ts ~name:"relay-drop" ~cat:"recovery"
           (stamp_args stamp [ ("reason", Json.Str reason) ]))
    | Journal.Inlined { parent_task; proc; work } ->
      push
        (instant ~pid:(if proc >= 0 && proc < nodes then proc else cluster_pid ~nodes)
           ~ts ~name:"inline" ~cat:"lifecycle"
           (stamp_args stamp [ ("parent_task", Json.Int parent_task); ("work", Json.Int work) ]))
    | Journal.Result_accepted { task } ->
      push
        (instant ~pid:(cluster_pid ~nodes) ~ts ~name:"result-accepted" ~cat:"lifecycle"
           (stamp_args stamp [ ("task", Json.Int task) ]))
    | Journal.Duplicate_ignored { task } ->
      push
        (instant ~pid:(cluster_pid ~nodes) ~ts ~name:"duplicate-ignored" ~cat:"recovery"
           (stamp_args stamp [ ("task", Json.Int task) ]))
    | Journal.Orphan_dropped { task } ->
      push
        (instant ~pid:(cluster_pid ~nodes) ~ts ~name:"orphan-dropped" ~cat:"recovery"
           (stamp_args stamp [ ("task", Json.Int task) ]))
    | Journal.Acked _ -> ()

  let finish ?at t =
    if not t.finished then begin
      t.finished <- true;
      let at = match at with Some a -> max a t.last_time | None -> t.last_time in
      let unfinished = Hashtbl.fold (fun task _ acc -> task :: acc) t.opens [] in
      List.iter (fun task -> close_slice t ~task ~at ~outcome:"unfinished") unfinished;
      Sink.flush t.sink
    end

  let entry_sink t =
    Sink.of_fun ~flush:(fun () -> Sink.flush t.sink) ~close:(fun () -> finish t) (feed t)
end

(* Occupancy counter track from the reconstructed timeline — post-hoc
   only: it needs the whole journal, which streaming mode never holds. *)
let occupancy_events journal ~nodes ~buckets =
  let entries = Journal.entries journal in
  if buckets <= 0 || entries = [] || nodes <= 0 then []
  else begin
    let last_time =
      List.fold_left (fun acc (e : Journal.entry) -> max acc e.Journal.time) 0 entries
    in
    let until = max 1 last_time in
    let grid = Timeline.occupancy journal ~nodes ~buckets ~until in
    List.concat
      (List.init nodes (fun proc ->
           List.init buckets (fun b ->
               let ts = b * until / buckets in
               counter ~pid:proc ~ts ~value:grid.(proc).(b))))
  end

let events journal ~nodes ?(occupancy_buckets = 96) () =
  let out = ref [] in
  let collect = Sink.of_fun (fun ev -> out := ev :: !out) in
  let stream = Stream.create ~nodes ~sink:collect in
  List.iter (Stream.feed stream) (Journal.entries journal);
  Stream.finish stream;
  List.rev_append !out (occupancy_events journal ~nodes ~buckets:occupancy_buckets)

let to_json journal ~nodes ?occupancy_buckets () =
  Json.List (events journal ~nodes ?occupancy_buckets ())

let write ~path journal ~nodes ?occupancy_buckets () =
  Json.write_file ~path (to_json journal ~nodes ?occupancy_buckets ())
