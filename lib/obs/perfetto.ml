module Journal = Recflow_machine.Journal
module Timeline = Recflow_machine.Timeline
module Stamp = Recflow_recovery.Stamp
module Json = Recflow_obs_core.Json

(* pid space: one "process" per simulated processor, plus one synthetic
   process for cluster-level events that have no processor (result
   splicing, duplicate suppression, orphan bookkeeping). *)
let cluster_pid ~nodes = nodes

let meta ~pid ~name ~sort_index =
  [
    Json.Obj
      [
        ("ph", Json.Str "M");
        ("pid", Json.Int pid);
        ("ts", Json.Int 0);
        ("name", Json.Str "process_name");
        ("args", Json.Obj [ ("name", Json.Str name) ]);
      ];
    Json.Obj
      [
        ("ph", Json.Str "M");
        ("pid", Json.Int pid);
        ("ts", Json.Int 0);
        ("name", Json.Str "process_sort_index");
        ("args", Json.Obj [ ("sort_index", Json.Int sort_index) ]);
      ];
  ]

let slice ~pid ~tid ~ts ~dur ~name ~stamp ~task ~outcome =
  Json.Obj
    [
      ("ph", Json.Str "X");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("ts", Json.Int ts);
      ("dur", Json.Int (max 0 dur));
      ("name", Json.Str name);
      ("cat", Json.Str "task");
      ( "args",
        Json.Obj
          [
            ("task", Json.Int task);
            ("stamp", Json.Str (Stamp.to_string stamp));
            ("outcome", Json.Str outcome);
          ] );
    ]

let instant ?(scope = "t") ~pid ~ts ~name ~cat args =
  Json.Obj
    [
      ("ph", Json.Str "i");
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("ts", Json.Int ts);
      ("s", Json.Str scope);
      ("name", Json.Str name);
      ("cat", Json.Str cat);
      ("args", Json.Obj args);
    ]

let counter ~pid ~ts ~value =
  Json.Obj
    [
      ("ph", Json.Str "C");
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("ts", Json.Int ts);
      ("name", Json.Str "occupancy");
      ("args", Json.Obj [ ("live", Json.Int (max 0 value)) ]);
    ]

type open_slice = { proc : int; lane : int; start : int; stamp : Stamp.t }

let events journal ~nodes ?(occupancy_buckets = 96) () =
  let entries = Journal.entries journal in
  let last_time = List.fold_left (fun acc (e : Journal.entry) -> max acc e.Journal.time) 0 entries in
  let out = ref [] in
  let push ev = out := ev :: !out in
  (* lane allocation: reuse the lowest freed lane per processor so
     concurrent tasks stack compactly instead of each claiming a row *)
  let free_lanes = Array.make (max 1 nodes) [] in
  let next_lane = Array.make (max 1 nodes) 0 in
  let claim proc =
    if proc < 0 || proc >= nodes then 0
    else
      match free_lanes.(proc) with
      | lane :: rest ->
        free_lanes.(proc) <- rest;
        lane
      | [] ->
        let lane = next_lane.(proc) in
        next_lane.(proc) <- lane + 1;
        lane
  in
  let release proc lane =
    if proc >= 0 && proc < nodes then
      free_lanes.(proc) <- List.sort compare (lane :: free_lanes.(proc))
  in
  let open_slices : (int, open_slice) Hashtbl.t = Hashtbl.create 256 in
  let close_slice ~task ~at ~outcome =
    match Hashtbl.find_opt open_slices task with
    | None -> ()
    | Some s ->
      Hashtbl.remove open_slices task;
      release s.proc s.lane;
      push
        (slice ~pid:s.proc ~tid:s.lane ~ts:s.start ~dur:(at - s.start)
           ~name:(Printf.sprintf "t%d %s" task (Stamp.to_string s.stamp))
           ~stamp:s.stamp ~task ~outcome)
  in
  let stamp_args stamp rest = ("stamp", Json.Str (Stamp.to_string stamp)) :: rest in
  List.iter
    (fun (e : Journal.entry) ->
      let ts = e.Journal.time in
      let stamp = e.Journal.stamp in
      match e.Journal.event with
      | Journal.Activated { task; proc } ->
        let lane = claim proc in
        Hashtbl.replace open_slices task { proc; lane; start = ts; stamp }
      | Journal.Completed { task; _ } -> close_slice ~task ~at:ts ~outcome:"completed"
      | Journal.Aborted { task; proc; _ } ->
        (* an abort may target a task that never activated here; record the
           instant either way *)
        close_slice ~task ~at:ts ~outcome:"aborted";
        push
          (instant ~pid:(if proc >= 0 && proc < nodes then proc else cluster_pid ~nodes)
             ~ts ~name:"abort" ~cat:"recovery"
             (stamp_args stamp [ ("task", Json.Int task) ]))
      | Journal.Lost { task; proc; work } ->
        close_slice ~task ~at:ts ~outcome:"killed";
        push
          (instant ~pid:(if proc >= 0 && proc < nodes then proc else cluster_pid ~nodes)
             ~ts ~name:"lost" ~cat:"failure"
             (stamp_args stamp [ ("task", Json.Int task); ("work", Json.Int work) ]))
      | Journal.Failure { proc } ->
        (* [Lost] entries have already closed resident slices; sweep any
           stragglers so nothing survives its processor *)
        let victims =
          Hashtbl.fold (fun task s acc -> if s.proc = proc then task :: acc else acc) open_slices []
        in
        List.iter (fun task -> close_slice ~task ~at:ts ~outcome:"killed") victims;
        push (instant ~scope:"p" ~pid:proc ~ts ~name:"failure" ~cat:"failure" [])
      | Journal.Spawned { task; dest; replica } ->
        let args = stamp_args stamp [ ("task", Json.Int task) ] in
        let args = if replica > 0 then ("replica", Json.Int replica) :: args else args in
        push
          (instant ~pid:(if dest >= 0 && dest < nodes then dest else cluster_pid ~nodes)
             ~ts ~name:"spawn" ~cat:"lifecycle" args)
      | Journal.Respawned { task; dest; reason } ->
        push
          (instant ~pid:(if dest >= 0 && dest < nodes then dest else cluster_pid ~nodes)
             ~ts ~name:"reissue" ~cat:"recovery"
             (stamp_args stamp [ ("task", Json.Int task); ("reason", Json.Str reason) ]))
      | Journal.Inherited { orphan_task; proc } ->
        push
          (instant ~pid:(if proc >= 0 && proc < nodes then proc else cluster_pid ~nodes)
             ~ts ~name:"inherit" ~cat:"recovery"
             (stamp_args stamp [ ("orphan_task", Json.Int orphan_task) ]))
      | Journal.Relayed { via } ->
        push
          (instant ~pid:(if via >= 0 && via < nodes then via else cluster_pid ~nodes)
             ~ts ~name:"relay" ~cat:"recovery" (stamp_args stamp []))
      | Journal.Relay_dropped { at; reason } ->
        push
          (instant ~pid:(if at >= 0 && at < nodes then at else cluster_pid ~nodes)
             ~ts ~name:"relay-drop" ~cat:"recovery"
             (stamp_args stamp [ ("reason", Json.Str reason) ]))
      | Journal.Inlined { parent_task; proc; work } ->
        push
          (instant ~pid:(if proc >= 0 && proc < nodes then proc else cluster_pid ~nodes)
             ~ts ~name:"inline" ~cat:"lifecycle"
             (stamp_args stamp [ ("parent_task", Json.Int parent_task); ("work", Json.Int work) ]))
      | Journal.Result_accepted { task } ->
        push
          (instant ~pid:(cluster_pid ~nodes) ~ts ~name:"result-accepted" ~cat:"lifecycle"
             (stamp_args stamp [ ("task", Json.Int task) ]))
      | Journal.Duplicate_ignored { task } ->
        push
          (instant ~pid:(cluster_pid ~nodes) ~ts ~name:"duplicate-ignored" ~cat:"recovery"
             (stamp_args stamp [ ("task", Json.Int task) ]))
      | Journal.Orphan_dropped { task } ->
        push
          (instant ~pid:(cluster_pid ~nodes) ~ts ~name:"orphan-dropped" ~cat:"recovery"
             (stamp_args stamp [ ("task", Json.Int task) ]))
      | Journal.Acked _ -> ())
    entries;
  (* tasks still running when the journal ends *)
  let unfinished = Hashtbl.fold (fun task _ acc -> task :: acc) open_slices [] in
  List.iter (fun task -> close_slice ~task ~at:last_time ~outcome:"unfinished") unfinished;
  (* occupancy counter track from the reconstructed timeline *)
  if occupancy_buckets > 0 && entries <> [] && nodes > 0 then begin
    let until = max 1 last_time in
    let grid = Timeline.occupancy journal ~nodes ~buckets:occupancy_buckets ~until in
    for proc = 0 to nodes - 1 do
      for b = 0 to occupancy_buckets - 1 do
        let ts = b * until / occupancy_buckets in
        push (counter ~pid:proc ~ts ~value:grid.(proc).(b))
      done
    done
  end;
  let header =
    List.concat
      (List.init nodes (fun p -> meta ~pid:p ~name:(Printf.sprintf "P%d" p) ~sort_index:p)
      @ [ meta ~pid:(cluster_pid ~nodes) ~name:"cluster" ~sort_index:nodes ])
  in
  header @ List.rev !out

let to_json journal ~nodes ?occupancy_buckets () =
  Json.List (events journal ~nodes ?occupancy_buckets ())

let write ~path journal ~nodes ?occupancy_buckets () =
  Json.write_file ~path (to_json journal ~nodes ?occupancy_buckets ())
