type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------------- printing ---------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    if Float.is_finite f then
      (* shortest representation that round-trips and always reparses as a
         float (never as an int) *)
      let s = Printf.sprintf "%.17g" f in
      let s =
        let short = Printf.sprintf "%.12g" f in
        if float_of_string short = f then short else s
      in
      if String.contains s '.' || String.contains s 'e' || String.contains s 'E' then
        Buffer.add_string buf s
      else Buffer.add_string buf (s ^ ".0")
    else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)

let write_file ~path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      to_channel oc v;
      output_char oc '\n')

(* ---------------- parsing ---------------- *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad (Printf.sprintf "%s at offset %d" m !pos))) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %C, found %C" c c'
    | None -> fail "expected %C, found end of input" c
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail "bad literal"
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8_add buf cp =
    (* encode one code point; surrogate pairs were already combined *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let cp = hex4 () in
          let cp =
            if cp >= 0xD800 && cp <= 0xDBFF && !pos + 6 <= n && s.[!pos] = '\\'
               && s.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let lo = hex4 () in
              0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
            end
            else cp
          in
          utf8_add buf cp
        | c -> fail "bad escape \\%C" c);
        go ())
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_float = ref false in
    let digits () =
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with Some f -> Float f | None -> fail "bad number %S" text
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character %C" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ---------------- accessors ---------------- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_list = function List xs -> xs | _ -> []

let str = function Str s -> Some s | _ -> None

let int = function Int i -> Some i | _ -> None
