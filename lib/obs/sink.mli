(** Pluggable consumers for high-volume event streams.

    A ['a t] is anywhere a producer can push values of type ['a]: a bounded
    in-memory ring (the classic trace buffer), a line-oriented file stream
    (JSONL — million-event runs go to disk instead of silently evicting),
    a tee duplicating into two sinks, a plain callback, or nothing at all.
    {!Recflow_sim.Trace} keeps its ring on this abstraction and lets
    callers attach extra sinks; the CLI wires a JSONL file sink behind
    [--trace-jsonl]. *)

type 'a t

val emit : 'a t -> 'a -> unit

val flush : 'a t -> unit

val close : 'a t -> unit
(** Flush and release any resource (idempotent).  Emitting into a closed
    sink discards the value but counts it in {!dropped}. *)

val emitted : 'a t -> int
(** Values accepted by this sink so far. *)

val dropped : 'a t -> int
(** Values this sink decided not to keep or forward: emits into a closed
    sink, values a {!sample} wrapper skipped, ring evictions, reservoir
    rejections.  Nothing is ever lost without moving this count. *)

val null : unit -> 'a t
(** Discards everything (still counts {!emitted}). *)

val of_fun : ?flush:(unit -> unit) -> ?close:(unit -> unit) -> ('a -> unit) -> 'a t

val tee : 'a t -> 'a t -> 'a t
(** [tee a b] pushes every value to [a] then [b]; flush/close reach both. *)

val sample : every:int -> 'a t -> 'a t
(** [sample ~every inner] forwards the 1st, [every+1]-th, [2*every+1]-th …
    value to [inner] and counts the rest in its own {!dropped} tally —
    deterministic rate sampling for high-volume streams (an [every] of 1
    forwards everything).  Flush/close reach [inner].
    @raise Invalid_argument if [every <= 0]. *)

val channel : render:('a -> string) -> out_channel -> 'a t
(** One [render]ed line per value (a newline is appended).  The channel is
    not closed by {!close} — the caller owns it. *)

val file : render:('a -> string) -> string -> 'a t
(** Like {!channel} but opens (truncates) [path] and owns it: {!close}
    closes the file descriptor.
    @raise Sys_error if the file cannot be created. *)

(** Bounded ring buffer retaining the most recent [capacity] values,
    with a monotone count of everything ever pushed. *)
module Ring : sig
  type 'a ring

  val create : capacity:int -> 'a ring
  (** @raise Invalid_argument if [capacity <= 0]. *)

  val push : 'a ring -> 'a -> unit

  val to_list : 'a ring -> 'a list
  (** Retained values, oldest first. *)

  val total : 'a ring -> int
  (** Everything ever pushed, including evicted values. *)

  val length : 'a ring -> int
  (** Currently retained (at most [capacity]). *)

  val capacity : 'a ring -> int

  val clear : 'a ring -> unit
  (** Drops the retained values; {!total} is monotone and keeps counting. *)

  val sink : 'a ring -> 'a t
  (** View the ring as a sink ({!push} on emit); each eviction of an old
      value counts in the sink's {!dropped}. *)
end

(** Seeded reservoir sampling (Algorithm R): retains a uniform random
    sample of bounded size from a stream of unknown length, using its own
    splitmix64 state so the choice is deterministic per seed and
    independent of any other randomness in the process. *)
module Reservoir : sig
  type 'a res

  val create : capacity:int -> seed:int -> 'a res
  (** @raise Invalid_argument if [capacity <= 0]. *)

  val push : 'a res -> 'a -> bool
  (** [true] when the value was retained (possibly displacing an earlier
      one), [false] when it was rejected.  After [n] pushes every value has
      had the same [capacity/n] retention probability. *)

  val to_list : 'a res -> 'a list
  (** Retained sample, in slot order (not push order). *)

  val total : 'a res -> int

  val length : 'a res -> int
  (** Currently retained (at most [capacity]). *)

  val capacity : 'a res -> int

  val sink : 'a res -> 'a t
  (** View the reservoir as a sink; rejected values count in the sink's
      {!dropped}. *)
end
