module Cluster = Recflow_machine.Cluster
module Config = Recflow_machine.Config
module Journal = Recflow_machine.Journal
module Counter = Recflow_stats.Counter
module Trace = Recflow_sim.Trace
module Value = Recflow_lang.Value
module Json = Recflow_obs_core.Json

let schema = "recflow.metrics/1"

let meta_value_json : Config.meta_value -> Json.t = function
  | `Int n -> Json.Int n
  | `Str s -> Json.Str s
  | `Bool b -> Json.Bool b

let meta_json ?workload ?size config =
  let fields = List.map (fun (k, v) -> (k, meta_value_json v)) (Config.metadata config) in
  let opt name = function Some v -> [ (name, Json.Str v) ] | None -> [] in
  Json.Obj (fields @ opt "workload" workload @ opt "size" size)

let opt_int = function Some n -> Json.Int n | None -> Json.Null

let outcome_json ?expected (outcome : Cluster.outcome) ~total_work ~total_waste =
  let answer = match outcome.Cluster.answer with Some v -> Json.Str (Value.to_string v) | None -> Json.Null in
  let correct =
    match (expected, outcome.Cluster.answer) with
    | Some e, Some v -> [ ("correct", Json.Bool (Value.equal e v)) ]
    | Some _, None -> [ ("correct", Json.Bool false) ]
    | None, _ -> []
  in
  Json.Obj
    ([
       ("answer", answer);
       ("answer_time", opt_int outcome.Cluster.answer_time);
       ("sim_time", Json.Int outcome.Cluster.sim_time);
       ("events", Json.Int outcome.Cluster.events);
       ( "error",
         match outcome.Cluster.error with Some e -> Json.Str e | None -> Json.Null );
       ("total_work", Json.Int total_work);
       ("total_waste", Json.Int total_waste);
     ]
    @ correct)

let run_json ?workload ?size ?expected ~cluster ~outcome () =
  let journal = Cluster.journal cluster in
  let episodes = Episode.analyze journal in
  let trace = Cluster.trace cluster in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("meta", meta_json ?workload ?size (Cluster.config cluster));
      ( "outcome",
        outcome_json ?expected outcome ~total_work:(Cluster.total_work cluster)
          ~total_waste:(Cluster.total_waste cluster) );
      ( "counters",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Int v)) (Counter.to_alist (Cluster.counters cluster)))
      );
      ( "trace",
        Json.Obj
          [
            ("logged", Json.Int (Trace.count trace));
            ("retained", Json.Int (List.length (Trace.records trace)));
          ] );
      ("journal_entries", Json.Int (Journal.length journal));
      ("episodes", Json.List (List.map Episode.to_json episodes));
      ("episode_summary", Episode.aggregate_to_json (Episode.aggregate episodes));
    ]

let write ~path doc = Json.write_file ~path doc
