module Cluster = Recflow_machine.Cluster
module Config = Recflow_machine.Config
module Journal = Recflow_machine.Journal
module Counter = Recflow_stats.Counter
module Hdr = Recflow_stats.Hdr
module Trace = Recflow_sim.Trace
module Value = Recflow_lang.Value
module Json = Recflow_obs_core.Json

let schema = "recflow.metrics/1"

let meta_value_json : Config.meta_value -> Json.t = function
  | `Int n -> Json.Int n
  | `Str s -> Json.Str s
  | `Bool b -> Json.Bool b

let meta_json ?workload ?size config =
  let fields = List.map (fun (k, v) -> (k, meta_value_json v)) (Config.metadata config) in
  let opt name = function Some v -> [ (name, Json.Str v) ] | None -> [] in
  Json.Obj (fields @ opt "workload" workload @ opt "size" size)

let opt_int = function Some n -> Json.Int n | None -> Json.Null

let outcome_json ?expected (outcome : Cluster.outcome) ~total_work ~total_waste =
  let answer = match outcome.Cluster.answer with Some v -> Json.Str (Value.to_string v) | None -> Json.Null in
  let correct =
    match (expected, outcome.Cluster.answer) with
    | Some e, Some v -> [ ("correct", Json.Bool (Value.equal e v)) ]
    | Some _, None -> [ ("correct", Json.Bool false) ]
    | None, _ -> []
  in
  Json.Obj
    ([
       ("answer", answer);
       ("answer_time", opt_int outcome.Cluster.answer_time);
       ("sim_time", Json.Int outcome.Cluster.sim_time);
       ("events", Json.Int outcome.Cluster.events);
       ( "error",
         match outcome.Cluster.error with Some e -> Json.Str e | None -> Json.Null );
       ("total_work", Json.Int total_work);
       ("total_waste", Json.Int total_waste);
     ]
    @ correct)

(* Percentile block for one duration histogram; quantiles are omitted for
   an empty histogram rather than faked as zeros. *)
let hdr_json h =
  let base = [ ("count", Json.Int (Hdr.count h)); ("invalid", Json.Int (Hdr.invalid h)) ] in
  if Hdr.count h = 0 then Json.Obj base
  else
    let q p = Json.Int (Hdr.quantile h p) in
    Json.Obj
      (base
      @ [
          ("mean", Json.Float (Hdr.mean h));
          ("min", Json.Int (Hdr.min_value h));
          ("p50", q 50.0);
          ("p90", q 90.0);
          ("p99", q 99.0);
          ("p999", q 99.9);
          ("max", Json.Int (Hdr.max_value h));
        ])

(* Recovery-episode durations come out of the journal analyzer rather than
   a runtime recording point, but they belong in the same percentile block
   as the transport and sojourn histograms. *)
let episode_duration_hdr episodes =
  let h = Hdr.create () in
  List.iter
    (fun (e : Episode.t) ->
      match e.Episode.recovery_latency with Some d -> Hdr.record h d | None -> ())
    episodes;
  h

let latency_json ~cluster ~episodes =
  let families = Cluster.latency_hists cluster in
  let ep = episode_duration_hdr episodes in
  let families =
    if Hdr.count ep > 0 then
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (("episode.duration", ep) :: families)
    else families
  in
  Json.Obj (List.map (fun (name, h) -> (name, hdr_json h)) families)

let run_json ?workload ?size ?expected ~cluster ~outcome () =
  let journal = Cluster.journal cluster in
  let episodes = Episode.analyze journal in
  let trace = Cluster.trace cluster in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("meta", meta_json ?workload ?size (Cluster.config cluster));
      ( "outcome",
        outcome_json ?expected outcome ~total_work:(Cluster.total_work cluster)
          ~total_waste:(Cluster.total_waste cluster) );
      ( "counters",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Int v)) (Counter.to_alist (Cluster.counters cluster)))
      );
      ( "trace",
        Json.Obj
          [
            ("logged", Json.Int (Trace.count trace));
            ("retained", Json.Int (List.length (Trace.records trace)));
          ] );
      ("latency", latency_json ~cluster ~episodes);
      ("journal_entries", Json.Int (Journal.length journal));
      ("episodes", Json.List (List.map Episode.to_json episodes));
      ("episode_summary", Episode.aggregate_to_json (Episode.aggregate episodes));
    ]

let write ~path doc = Json.write_file ~path doc
